package workload

import "time"

// This file defines the statistical tenant profiles used throughout the
// evaluation. The Company ABC profiles follow Table 1 of the paper:
//
//	BI   I/O-intensive SQL queries            (best-effort)
//	DEV  Mixture of different types of jobs   (best-effort)
//	APP  Small, lightweight jobs              (deadline, high priority)
//	STR  Hadoop streaming jobs                (best-effort, map-only)
//	MV   Long-running, CPU-intensive          (deadline; 2–6 h runs)
//	ETL  I/O-intensive, periodic but bursty   (deadline; 5–60 min runs)
//
// The Facebook and Cloudera profiles follow the SWIM cross-industry
// characterization [12]: arrival streams dominated by very small jobs with
// a heavy tail of large ones.
//
// Rates are scaled for a laptop-size emulated cluster (tens to hundreds of
// containers), preserving the contention ratios rather than the absolute
// job counts of the 700-node production system.

// CompanyABC returns the six-tenant production mix of Table 1. scale
// multiplies every tenant's arrival rate; 1.0 suits a cluster of roughly
// 100–200 containers.
func CompanyABC(scale float64) []TenantProfile {
	if scale <= 0 {
		scale = 1
	}
	return []TenantProfile{
		{
			// BI analysts: I/O-heavy scan queries, many maps, light
			// reduces, business-hours diurnal pattern.
			Name:          "BI",
			JobsPerHour:   14 * scale,
			Rate:          DiurnalWeekly(0.2, 0.4),
			NumMaps:       Clamped{D: LognormalFromMean(20, 1.0), Lo: 1, Hi: 400},
			NumReduces:    Clamped{D: LognormalFromMean(3, 0.8), Lo: 0, Hi: 40},
			MapSeconds:    Clamped{D: LognormalFromMean(45, 0.9), Lo: 2, Hi: 1800},
			ReduceSeconds: Clamped{D: LognormalFromMean(90, 0.9), Lo: 2, Hi: 3600},
		},
		{
			// DEV: development runs of everything — a wide mixture.
			Name:        "DEV",
			JobsPerHour: 10 * scale,
			Rate:        DiurnalWeekly(0.15, 0.25),
			NumMaps: Mixture{
				Weights:    []float64{0.7, 0.3},
				Components: []Dist{Clamped{D: LognormalFromMean(5, 0.8), Lo: 1, Hi: 50}, Clamped{D: LognormalFromMean(60, 1.0), Lo: 1, Hi: 600}},
			},
			NumReduces: Clamped{D: LognormalFromMean(4, 1.0), Lo: 0, Hi: 60},
			MapSeconds: Mixture{
				Weights:    []float64{0.6, 0.4},
				Components: []Dist{Clamped{D: LognormalFromMean(15, 0.7), Lo: 1, Hi: 600}, Clamped{D: LognormalFromMean(120, 1.1), Lo: 1, Hi: 3600}},
			},
			ReduceSeconds: Clamped{D: LognormalFromMean(150, 1.1), Lo: 2, Hi: 5400},
		},
		{
			// APP: the high-priority production application — small,
			// lightweight, latency-sensitive jobs with deadlines.
			Name:                "APP",
			JobsPerHour:         30 * scale,
			NumMaps:             Clamped{D: LognormalFromMean(4, 0.6), Lo: 1, Hi: 30},
			NumReduces:          Clamped{D: Constant(1), Lo: 0, Hi: 2},
			MapSeconds:          Clamped{D: LognormalFromMean(12, 0.6), Lo: 1, Hi: 300},
			ReduceSeconds:       Clamped{D: LognormalFromMean(20, 0.6), Lo: 1, Hi: 600},
			DeadlineFactor:      Uniform{Lo: 1.5, Hi: 3},
			DeadlineParallelism: 8,
		},
		{
			// STR: Hadoop streaming — map-only pipelines.
			Name:        "STR",
			JobsPerHour: 8 * scale,
			Rate:        DiurnalWeekly(0.3, 0.5),
			NumMaps:     Clamped{D: LognormalFromMean(30, 1.0), Lo: 1, Hi: 500},
			MapSeconds:  Clamped{D: LognormalFromMean(75, 1.0), Lo: 2, Hi: 3600},
		},
		{
			// MV: materialized views and model building — few, huge,
			// CPU-bound jobs with long reduce tails and deadlines. The
			// paper reports 2–6 hour completions.
			Name:                "MV",
			JobsPerHour:         1.2 * scale,
			Rate:                Periodic(6*time.Hour, time.Hour, 0.3, 3.5),
			NumMaps:             Clamped{D: LognormalFromMean(120, 0.8), Lo: 10, Hi: 1500},
			NumReduces:          Clamped{D: LognormalFromMean(40, 0.7), Lo: 4, Hi: 300},
			MapSeconds:          Clamped{D: LognormalFromMean(150, 0.9), Lo: 10, Hi: 3600},
			ReduceSeconds:       Clamped{D: LognormalFromMean(1500, 0.9), Lo: 60, Hi: 6 * 3600},
			DeadlineFactor:      Uniform{Lo: 1.3, Hi: 2},
			DeadlineParallelism: 40,
		},
		{
			// ETL: periodic but bursty ingest with hard deadlines; 5–60
			// minute completions; weekend dip in input volume.
			Name:                "ETL",
			JobsPerHour:         5 * scale,
			Rate:                combineModulators(Periodic(time.Hour, 15*time.Minute, 0.25, 3), DiurnalWeekly(0.8, 0.45)),
			NumMaps:             Clamped{D: LognormalFromMean(80, 0.9), Lo: 5, Hi: 1000},
			NumReduces:          Clamped{D: LognormalFromMean(15, 0.7), Lo: 2, Hi: 120},
			MapSeconds:          Clamped{D: LognormalFromMean(60, 0.8), Lo: 5, Hi: 1800},
			ReduceSeconds:       Clamped{D: LognormalFromMean(240, 0.8), Lo: 10, Hi: 3600},
			DeadlineFactor:      Uniform{Lo: 1.4, Hi: 2.2},
			DeadlineParallelism: 25,
		},
	}
}

// DeadlineDriven returns a single deadline-driven tenant resembling a blend
// of ETL and MV workloads; used by the two-tenant end-to-end scenarios
// (§8.2.1–8.2.3).
func DeadlineDriven(name string, scale float64) TenantProfile {
	if scale <= 0 {
		scale = 1
	}
	return TenantProfile{
		Name:                name,
		JobsPerHour:         10 * scale,
		NumMaps:             Clamped{D: LognormalFromMean(25, 0.8), Lo: 2, Hi: 300},
		NumReduces:          Clamped{D: LognormalFromMean(6, 0.7), Lo: 1, Hi: 50},
		MapSeconds:          Clamped{D: LognormalFromMean(40, 0.8), Lo: 2, Hi: 1200},
		ReduceSeconds:       Clamped{D: LognormalFromMean(120, 0.8), Lo: 5, Hi: 2400},
		DeadlineFactor:      Uniform{Lo: 1.4, Hi: 2.5},
		DeadlineParallelism: 20,
	}
}

// BestEffort returns a best-effort tenant with long-running reduce tasks —
// the profile the paper identifies as the main preemption victim (§8.2.2,
// Fig. 8: best-effort reduces are the longest tasks on the cluster).
func BestEffort(name string, scale float64) TenantProfile {
	if scale <= 0 {
		scale = 1
	}
	return TenantProfile{
		Name:          name,
		JobsPerHour:   14 * scale,
		NumMaps:       Clamped{D: LognormalFromMean(15, 0.9), Lo: 1, Hi: 200},
		NumReduces:    Clamped{D: LognormalFromMean(5, 0.8), Lo: 1, Hi: 40},
		MapSeconds:    Clamped{D: LognormalFromMean(30, 0.9), Lo: 2, Hi: 900},
		ReduceSeconds: Clamped{D: LognormalFromMean(480, 1.0), Lo: 20, Hi: 4 * 3600},
	}
}

// Facebook returns a SWIM-style Facebook-like tenant: a torrent of tiny
// jobs with a heavy tail.
func Facebook(name string, scale float64) TenantProfile {
	if scale <= 0 {
		scale = 1
	}
	return TenantProfile{
		Name:        name,
		JobsPerHour: 60 * scale,
		NumMaps: Mixture{
			Weights:    []float64{0.85, 0.13, 0.02},
			Components: []Dist{Clamped{D: LognormalFromMean(3, 0.6), Lo: 1, Hi: 10}, Clamped{D: LognormalFromMean(40, 0.8), Lo: 5, Hi: 200}, Clamped{D: Pareto{Scale: 200, Alpha: 1.5}, Lo: 200, Hi: 2000}},
		},
		NumReduces:    Clamped{D: LognormalFromMean(2, 0.9), Lo: 0, Hi: 50},
		MapSeconds:    Clamped{D: LognormalFromMean(20, 1.0), Lo: 1, Hi: 1200},
		ReduceSeconds: Clamped{D: LognormalFromMean(45, 1.0), Lo: 1, Hi: 2400},
	}
}

// Cloudera returns a SWIM-style Cloudera-customer-like tenant: moderate
// rate, more medium-size jobs than the Facebook mix.
func Cloudera(name string, scale float64) TenantProfile {
	if scale <= 0 {
		scale = 1
	}
	return TenantProfile{
		Name:        name,
		JobsPerHour: 25 * scale,
		NumMaps: Mixture{
			Weights:    []float64{0.6, 0.4},
			Components: []Dist{Clamped{D: LognormalFromMean(8, 0.8), Lo: 1, Hi: 60}, Clamped{D: LognormalFromMean(80, 0.9), Lo: 10, Hi: 800}},
		},
		NumReduces:    Clamped{D: LognormalFromMean(6, 0.8), Lo: 0, Hi: 80},
		MapSeconds:    Clamped{D: LognormalFromMean(35, 0.9), Lo: 1, Hi: 1800},
		ReduceSeconds: Clamped{D: LognormalFromMean(100, 0.9), Lo: 2, Hi: 3600},
	}
}

func combineModulators(mods ...Modulator) Modulator {
	return func(t time.Duration) float64 {
		m := 1.0
		for _, f := range mods {
			m *= f(t)
		}
		return m
	}
}

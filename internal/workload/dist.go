package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Dist is a one-dimensional probability distribution. All sampling in the
// workload generator flows through this interface so profiles can mix
// closed-form and empirical distributions freely.
type Dist interface {
	// Sample draws one value using the supplied source of randomness.
	Sample(rng *rand.Rand) float64
	// Mean returns the distribution's expectation (used for deadline and
	// provisioning estimates).
	Mean() float64
}

// Constant is a degenerate distribution.
type Constant float64

// Sample implements Dist.
func (c Constant) Sample(*rand.Rand) float64 { return float64(c) }

// Mean implements Dist.
func (c Constant) Mean() float64 { return float64(c) }

// Uniform is the continuous uniform distribution on [Lo, Hi].
type Uniform struct {
	Lo, Hi float64
}

// Sample implements Dist.
func (u Uniform) Sample(rng *rand.Rand) float64 { return u.Lo + rng.Float64()*(u.Hi-u.Lo) }

// Mean implements Dist.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// Exponential has the given mean (not rate), which reads naturally in
// profile definitions.
type Exponential struct {
	MeanVal float64
}

// Sample implements Dist.
func (e Exponential) Sample(rng *rand.Rand) float64 { return rng.ExpFloat64() * e.MeanVal }

// Mean implements Dist.
func (e Exponential) Mean() float64 { return e.MeanVal }

// Lognormal is parameterized by the underlying normal's Mu and Sigma.
// The paper (§7.1) reports task durations approximately lognormal.
type Lognormal struct {
	Mu, Sigma float64
}

// Sample implements Dist.
func (l Lognormal) Sample(rng *rand.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*rng.NormFloat64())
}

// Mean implements Dist.
func (l Lognormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// LognormalFromMean constructs a Lognormal with the given mean and the
// given sigma of the underlying normal — the natural way to say "mean task
// duration 90s with heavy spread".
func LognormalFromMean(mean, sigma float64) Lognormal {
	if mean <= 0 {
		panic(fmt.Sprintf("workload: lognormal mean must be positive, got %g", mean))
	}
	return Lognormal{Mu: math.Log(mean) - sigma*sigma/2, Sigma: sigma}
}

// Pareto is the heavy-tailed distribution with minimum Scale and shape
// Alpha; job input sizes in production MapReduce clusters are famously
// heavy-tailed (SWIM).
type Pareto struct {
	Scale, Alpha float64
}

// Sample implements Dist.
func (p Pareto) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return p.Scale / math.Pow(u, 1/p.Alpha)
}

// Mean implements Dist. For Alpha <= 1 the mean diverges; we report +Inf.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Scale / (p.Alpha - 1)
}

// Mixture draws from one of several components with given weights.
type Mixture struct {
	Weights    []float64
	Components []Dist
}

// Sample implements Dist.
func (m Mixture) Sample(rng *rand.Rand) float64 {
	return m.Components[m.pick(rng)].Sample(rng)
}

func (m Mixture) pick(rng *rand.Rand) int {
	if len(m.Weights) != len(m.Components) || len(m.Components) == 0 {
		panic("workload: mixture weights/components mismatch")
	}
	var total float64
	for _, w := range m.Weights {
		total += w
	}
	u := rng.Float64() * total
	for i, w := range m.Weights {
		u -= w
		if u <= 0 {
			return i
		}
	}
	return len(m.Components) - 1
}

// Mean implements Dist.
func (m Mixture) Mean() float64 {
	var total, mean float64
	for _, w := range m.Weights {
		total += w
	}
	for i, w := range m.Weights {
		mean += w / total * m.Components[i].Mean()
	}
	return mean
}

// Empirical samples uniformly from observed values — the trace-replay end
// of the workload-generation spectrum.
type Empirical struct {
	Values []float64
}

// Sample implements Dist.
func (e Empirical) Sample(rng *rand.Rand) float64 {
	if len(e.Values) == 0 {
		panic("workload: empirical distribution with no values")
	}
	return e.Values[rng.Intn(len(e.Values))]
}

// Mean implements Dist.
func (e Empirical) Mean() float64 {
	if len(e.Values) == 0 {
		return 0
	}
	var s float64
	for _, v := range e.Values {
		s += v
	}
	return s / float64(len(e.Values))
}

// Quantile returns the q-th empirical quantile (0 <= q <= 1).
func (e Empirical) Quantile(q float64) float64 {
	if len(e.Values) == 0 {
		return 0
	}
	vals := append([]float64(nil), e.Values...)
	sort.Float64s(vals)
	idx := int(q * float64(len(vals)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(vals) {
		idx = len(vals) - 1
	}
	return vals[idx]
}

// Clamped limits another distribution's samples to [Lo, Hi], which keeps
// heavy tails from producing absurd task durations in small simulations.
type Clamped struct {
	D      Dist
	Lo, Hi float64
}

// Sample implements Dist.
func (c Clamped) Sample(rng *rand.Rand) float64 {
	v := c.D.Sample(rng)
	if v < c.Lo {
		return c.Lo
	}
	if v > c.Hi {
		return c.Hi
	}
	return v
}

// Mean implements Dist. The clamp is ignored for the analytic mean except
// for the obvious bounds; callers needing precision should use sampling.
func (c Clamped) Mean() float64 {
	m := c.D.Mean()
	if m < c.Lo {
		return c.Lo
	}
	if m > c.Hi {
		return c.Hi
	}
	return m
}

package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func sampleMean(d Dist, n int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	var s float64
	for i := 0; i < n; i++ {
		s += d.Sample(rng)
	}
	return s / float64(n)
}

func TestConstant(t *testing.T) {
	d := Constant(7)
	if d.Sample(nil) != 7 || d.Mean() != 7 {
		t.Fatal("Constant broken")
	}
}

func TestUniformRangeAndMean(t *testing.T) {
	d := Uniform{Lo: 2, Hi: 4}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		v := d.Sample(rng)
		if v < 2 || v > 4 {
			t.Fatalf("uniform sample %v out of range", v)
		}
	}
	if d.Mean() != 3 {
		t.Fatalf("Mean = %v, want 3", d.Mean())
	}
	if m := sampleMean(d, 20000, 2); math.Abs(m-3) > 0.05 {
		t.Fatalf("empirical mean = %v", m)
	}
}

func TestExponentialMean(t *testing.T) {
	d := Exponential{MeanVal: 5}
	if d.Mean() != 5 {
		t.Fatal("analytic mean wrong")
	}
	if m := sampleMean(d, 50000, 3); math.Abs(m-5) > 0.2 {
		t.Fatalf("empirical mean = %v, want ≈ 5", m)
	}
}

func TestLognormalFromMean(t *testing.T) {
	d := LognormalFromMean(100, 0.8)
	if math.Abs(d.Mean()-100) > 1e-9 {
		t.Fatalf("analytic mean = %v, want 100", d.Mean())
	}
	if m := sampleMean(d, 200000, 4); math.Abs(m-100) > 5 {
		t.Fatalf("empirical mean = %v, want ≈ 100", m)
	}
}

func TestLognormalFromMeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LognormalFromMean(0, 1)
}

func TestParetoTailAndMean(t *testing.T) {
	d := Pareto{Scale: 10, Alpha: 2}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		if v := d.Sample(rng); v < 10 {
			t.Fatalf("pareto sample %v below scale", v)
		}
	}
	if d.Mean() != 20 {
		t.Fatalf("Mean = %v, want 20", d.Mean())
	}
	if !math.IsInf(Pareto{Scale: 1, Alpha: 0.9}.Mean(), 1) {
		t.Fatal("alpha <= 1 should have infinite mean")
	}
}

func TestMixtureMeanAndSampling(t *testing.T) {
	m := Mixture{
		Weights:    []float64{1, 3},
		Components: []Dist{Constant(0), Constant(4)},
	}
	if m.Mean() != 3 {
		t.Fatalf("Mean = %v, want 3", m.Mean())
	}
	if got := sampleMean(m, 40000, 6); math.Abs(got-3) > 0.05 {
		t.Fatalf("empirical mean = %v", got)
	}
}

func TestMixtureMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Mixture{Weights: []float64{1}}.Sample(rand.New(rand.NewSource(1)))
}

func TestEmpirical(t *testing.T) {
	e := Empirical{Values: []float64{1, 2, 3, 4}}
	if e.Mean() != 2.5 {
		t.Fatalf("Mean = %v", e.Mean())
	}
	rng := rand.New(rand.NewSource(7))
	seen := map[float64]bool{}
	for i := 0; i < 200; i++ {
		seen[e.Sample(rng)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("sampled %d distinct values, want 4", len(seen))
	}
	if q := e.Quantile(0.5); q != 2 && q != 3 {
		t.Fatalf("median = %v", q)
	}
	if e.Quantile(0) != 1 || e.Quantile(1) != 4 {
		t.Fatal("extreme quantiles wrong")
	}
	if (Empirical{}).Mean() != 0 || (Empirical{}).Quantile(0.5) != 0 {
		t.Fatal("empty empirical should be zero-valued")
	}
}

func TestEmpiricalEmptySamplePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	(Empirical{}).Sample(rand.New(rand.NewSource(1)))
}

func TestClamped(t *testing.T) {
	d := Clamped{D: Uniform{Lo: -10, Hi: 10}, Lo: 0, Hi: 5}
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 1000; i++ {
		v := d.Sample(rng)
		if v < 0 || v > 5 {
			t.Fatalf("clamped sample %v out of [0,5]", v)
		}
	}
	if (Clamped{D: Constant(-3), Lo: 0, Hi: 5}).Mean() != 0 {
		t.Fatal("mean not clamped low")
	}
	if (Clamped{D: Constant(9), Lo: 0, Hi: 5}).Mean() != 5 {
		t.Fatal("mean not clamped high")
	}
	if (Clamped{D: Constant(2), Lo: 0, Hi: 5}).Mean() != 2 {
		t.Fatal("in-range mean altered")
	}
}

// Property: lognormal samples are always positive and LognormalFromMean
// keeps its promise for any positive mean/sigma.
func TestPropertyLognormalPositiveAndMeanMatched(t *testing.T) {
	f := func(seed int64, meanSeed, sigmaSeed uint8) bool {
		mean := 1 + float64(meanSeed)
		sigma := 0.1 + float64(sigmaSeed%30)/10
		d := LognormalFromMean(mean, sigma)
		if math.Abs(d.Mean()-mean) > 1e-6 {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 100; i++ {
			if d.Sample(rng) <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Package linalg implements the small dense linear-algebra kernel used by
// Tempo's optimizer: vector arithmetic, matrices, Gaussian elimination with
// partial pivoting, and (regularized) weighted least squares. Problem sizes
// are tiny — the RM configuration space has a handful of parameters per
// tenant and the QS vector a handful of objectives — so simplicity and
// numerical robustness win over asymptotics.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a linear system has no unique solution.
var ErrSingular = errors.New("linalg: singular matrix")

// Vector is a dense float64 vector.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Add returns v + w.
func (v Vector) Add(w Vector) Vector {
	checkLen(len(v), len(w))
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Sub returns v - w.
func (v Vector) Sub(w Vector) Vector {
	checkLen(len(v), len(w))
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// Scale returns a*v.
func (v Vector) Scale(a float64) Vector {
	out := make(Vector, len(v))
	for i := range v {
		out[i] = a * v[i]
	}
	return out
}

// AXPY adds a*w to v in place and returns v.
func (v Vector) AXPY(a float64, w Vector) Vector {
	checkLen(len(v), len(w))
	for i := range v {
		v[i] += a * w[i]
	}
	return v
}

// Dot returns the inner product of v and w.
func (v Vector) Dot(w Vector) float64 {
	checkLen(len(v), len(w))
	var s float64
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Norm returns the Euclidean norm of v.
func (v Vector) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// NormInf returns the maximum absolute entry of v.
func (v Vector) NormInf() float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Dist returns the Euclidean distance between v and w.
func (v Vector) Dist(w Vector) float64 { return v.Sub(w).Norm() }

// Clamp limits every entry of v to [lo, hi] in place and returns v.
func (v Vector) Clamp(lo, hi float64) Vector {
	for i := range v {
		if v[i] < lo {
			v[i] = lo
		} else if v[i] > hi {
			v[i] = hi
		}
	}
	return v
}

// Equal reports whether v and w agree entrywise within tol.
func (v Vector) Equal(w Vector, tol float64) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if math.Abs(v[i]-w[i]) > tol {
			return false
		}
	}
	return true
}

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, which must have equal lengths.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("linalg: ragged rows")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// At returns the (i, j) entry.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the (i, j) entry.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a vector sharing the matrix's storage.
func (m *Matrix) Row(i int) Vector { return Vector(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MulVec returns m·v.
func (m *Matrix) MulVec(v Vector) Vector {
	checkLen(m.Cols, len(v))
	out := NewVector(m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Row(i).Dot(v)
	}
	return out
}

// TMulVec returns mᵀ·v.
func (m *Matrix) TMulVec(v Vector) Vector {
	checkLen(m.Rows, len(v))
	out := NewVector(m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := 0; j < m.Cols; j++ {
			out[j] += row[j] * v[i]
		}
	}
	return out
}

// Mul returns m·b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	checkLen(m.Cols, b.Rows)
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Data[i*out.Cols+j] += a * b.At(k, j)
			}
		}
	}
	return out
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Gram returns m·mᵀ, the Gram matrix of the rows of m. For a Jacobian whose
// rows are QS gradients this yields G with G[i][j] = ∇fi·∇fj, the quantity
// PALD's ρ* derivation is built on.
func (m *Matrix) Gram() *Matrix {
	out := NewMatrix(m.Rows, m.Rows)
	for i := 0; i < m.Rows; i++ {
		ri := m.Row(i)
		for j := i; j < m.Rows; j++ {
			d := ri.Dot(m.Row(j))
			out.Set(i, j, d)
			out.Set(j, i, d)
		}
	}
	return out
}

// Solve solves a·x = b by Gaussian elimination with partial pivoting.
// a must be square; it is not modified.
func Solve(a *Matrix, b Vector) (Vector, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: Solve wants square matrix, got %dx%d", a.Rows, a.Cols)
	}
	checkLen(a.Rows, len(b))
	n := a.Rows
	m := a.Clone()
	x := b.Clone()
	for col := 0; col < n; col++ {
		// Partial pivot: largest absolute value in the column.
		pivot := col
		best := math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-14 {
			return nil, ErrSingular
		}
		if pivot != col {
			swapRows(m, pivot, col)
			x[pivot], x[col] = x[col], x[pivot]
		}
		inv := 1 / m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				m.Set(r, c, m.At(r, c)-f*m.At(col, c))
			}
			x[r] -= f * x[col]
		}
	}
	for r := n - 1; r >= 0; r-- {
		s := x[r]
		for c := r + 1; c < n; c++ {
			s -= m.At(r, c) * x[c]
		}
		x[r] = s / m.At(r, r)
	}
	return x, nil
}

// LeastSquares solves min_x ||a·x - b||² via the normal equations with a
// small Tikhonov ridge term lambda ≥ 0 on the diagonal, which keeps the
// system well-posed when rows of a are nearly collinear (common when the
// optimizer's sample cloud is thin in some directions).
func LeastSquares(a *Matrix, b Vector, lambda float64) (Vector, error) {
	checkLen(a.Rows, len(b))
	at := a.Transpose()
	ata := at.Mul(a)
	for i := 0; i < ata.Rows; i++ {
		ata.Set(i, i, ata.At(i, i)+lambda)
	}
	atb := at.MulVec(b)
	return Solve(ata, atb)
}

// WeightedLeastSquares solves min_x Σ w_i (a_i·x - b_i)² with ridge lambda.
// Weights must be nonnegative; rows with zero weight are ignored.
func WeightedLeastSquares(a *Matrix, b, w Vector, lambda float64) (Vector, error) {
	checkLen(a.Rows, len(b))
	checkLen(a.Rows, len(w))
	scaled := NewMatrix(a.Rows, a.Cols)
	sb := NewVector(a.Rows)
	for i := 0; i < a.Rows; i++ {
		if w[i] < 0 {
			return nil, fmt.Errorf("linalg: negative weight %g at row %d", w[i], i)
		}
		s := math.Sqrt(w[i])
		row := a.Row(i)
		dst := scaled.Row(i)
		for j := range row {
			dst[j] = s * row[j]
		}
		sb[i] = s * b[i]
	}
	return LeastSquares(scaled, sb, lambda)
}

func swapRows(m *Matrix, i, j int) {
	ri, rj := m.Row(i), m.Row(j)
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

func checkLen(a, b int) {
	if a != b {
		panic(fmt.Sprintf("linalg: dimension mismatch %d vs %d", a, b))
	}
}

// Package a is the determinism positive fixture: every construct the
// analyzer must catch, plus the accepted idioms beside each.
//
//tempolint:deterministic
package a

import (
	"math/rand"
	"sort"
	"strings"
	"time"
)

func appendUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append inside range over map`
	}
	return out
}

func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func floatAccum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `floating-point accumulation inside range over map`
	}
	return sum
}

func intAccumOK(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func send(m map[string]int, ch chan int) {
	for _, v := range m {
		ch <- v // want `channel send inside range over map`
	}
}

func earlyReturn(m map[string]int) int {
	for _, v := range m {
		if v > 0 {
			return v // want `return inside range over map`
		}
	}
	return 0
}

func breakOut(m map[string]int) int {
	best := 0
	for _, v := range m {
		if v > 10 {
			best = v
			break // want `break inside range over map`
		}
	}
	return best
}

func nestedBreakOK(m map[string]int, xs []int) int {
	n := 0
	for range m {
		for _, x := range xs {
			if x > 0 {
				break
			}
			n++
		}
	}
	return n
}

func closureReturnOK(m map[string]int) []func() int {
	fns := make(map[int]func() int, len(m))
	for _, v := range m {
		v := v
		fns[v] = func() int { return v }
	}
	return nil
}

func writeOutput(m map[string]int, sb *strings.Builder) {
	for k := range m {
		sb.WriteString(k) // want `writing output inside range over map`
	}
}

func wallClock() time.Time {
	return time.Now() // want `time.Now in deterministic code`
}

func globalRand() int {
	return rand.Intn(10) // want `global math/rand source in deterministic code`
}

func seededRandOK(r *rand.Rand) int {
	return r.Intn(10)
}

func newRandOK() *rand.Rand {
	return rand.New(rand.NewSource(1))
}

func twoReady(a, b chan int) int {
	select { // want `select with 2 communication cases in deterministic code`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

func oneCaseSelectOK(a chan int, quit chan struct{}) int {
	select {
	case v := <-a:
		return v
	default:
		return 0
	}
}

package exp

import (
	"fmt"
	"time"

	"tempo/internal/cluster"
	"tempo/internal/core"
	"tempo/internal/pald"
	"tempo/internal/qs"
	"tempo/internal/scenario"
	"tempo/internal/whatif"
	"tempo/internal/workload"
)

// loopCapacity and loopScale put the two-tenant scenario under real
// contention (~70-80% offered load), where RM configuration genuinely
// matters — matching the busy production clusters the paper targets.
const (
	loopCapacity = 48
	loopScale    = 2.2
)

// buildTwoTenantController wires the §8.2 scenario through the declarative
// scenario layer: TwoTenantSpec describes the tenants, SLOs, replay
// protocol, and expert starting point; scenario.Build materializes the
// controller. The derived seeds match the pre-scenario bespoke wiring, so
// the experiment trajectories are unchanged. Optional extra templates
// (Figure 9 adds utilization) and a strategy override hook in through
// scenario.Options.
func buildTwoTenantController(seed int64, slack float64, extra []qs.Template, interval time.Duration, strategy pald.Strategy, revert core.RevertPolicy) (*core.Controller, error) {
	spec := TwoTenantSpec(seed, slack, interval, 1)
	switch revert {
	case core.RevertOnNonDominance:
		spec.Controller.Revert = "non-dominance"
	case core.RevertOff:
		spec.Controller.Revert = "off"
	}
	rt, err := scenario.Build(spec, scenario.Options{
		Strategy:       strategy,
		Parallelism:    Parallelism,
		ExtraTemplates: extra,
	})
	if err != nil {
		return nil, err
	}
	return rt.Controller, nil
}

// Figure6Series is one slack setting's trajectory.
type Figure6Series struct {
	Slack float64
	// NormalizedAJR is best-effort QS_AJR divided by iteration 0's value.
	NormalizedAJR []float64
	// DeadlineViolationPct is QS_DL × 100 per iteration.
	DeadlineViolationPct []float64
	// Improvement is the relative AJR reduction at convergence.
	Improvement float64
}

// Figure6Result is the control-loop convergence experiment (§8.2.1).
type Figure6Result struct {
	Iterations int
	Series     []Figure6Series
}

// Figure6 runs the Tempo control loop for 25% and 50% deadline slack and
// records the per-iteration SLO trajectory, as in Figure 6.
func Figure6(seed int64, iterations int) (*Figure6Result, error) {
	if iterations <= 0 {
		iterations = 20
	}
	res := &Figure6Result{Iterations: iterations}
	for _, slack := range []float64{0.25, 0.5} {
		ctl, err := buildTwoTenantController(seed, slack, nil, time.Hour, nil, core.RevertOnWorse)
		if err != nil {
			return nil, err
		}
		history, err := ctl.Run(iterations)
		if err != nil {
			return nil, err
		}
		series := Figure6Series{Slack: slack}
		base := history[0].Observed[1]
		if base <= 0 {
			base = 1
		}
		for _, it := range history {
			series.NormalizedAJR = append(series.NormalizedAJR, it.Observed[1]/base)
			series.DeadlineViolationPct = append(series.DeadlineViolationPct, it.Observed[0]*100)
		}
		series.Improvement = core.Improvement(history, 1)
		res.Series = append(res.Series, series)
	}
	return res, nil
}

// Render prints the two trajectories.
func (r *Figure6Result) Render() string {
	var rows [][]string
	for _, s := range r.Series {
		for i := range s.NormalizedAJR {
			rows = append(rows, []string{
				fmt.Sprintf("%.0f%%", s.Slack*100),
				fmt.Sprintf("%d", i),
				fmt.Sprintf("%.3f", s.NormalizedAJR[i]),
				fmt.Sprintf("%.1f", s.DeadlineViolationPct[i]),
			})
		}
	}
	head := "Figure 6: control-loop trajectory"
	for _, s := range r.Series {
		head += fmt.Sprintf(" | slack %.0f%%: AJR improvement %.0f%%", s.Slack*100, s.Improvement*100)
	}
	return head + "\n" + table([]string{"slack", "iter", "AJR (norm)", "DL viol %"}, rows)
}

// Figure9Result compares the four SLOs before and after optimization.
type Figure9Result struct {
	// Values are [AJR seconds, DL fraction, map effective-work fraction,
	// reduce effective-work fraction]. The effective-work fraction is
	// useful container time divided by total busy container time per kind
	// — exactly the quantity Figure 1 motivates (preempted work is the
	// lost region I) and the lever behind Figure 9's reduce-utilization
	// gain.
	Original, Optimized [4]float64
	// Improvements are relative changes, positive = better.
	Improvements [4]float64
	// PreemptionsOriginal/Optimized count killed attempts on the verify
	// replay — the mechanism behind the reduce-utilization gain.
	PreemptionsOriginal, PreemptionsOptimized int
}

// fig9Profiles is the §8.2.2 mix: a deadline tenant plus a best-effort
// tenant with long reduce tasks, the preemption victims the paper reports
// (23% of reduce tasks preempted, mostly best-effort).
func fig9Profiles() []workload.TenantProfile {
	dd := workload.Cloudera("deadline", 2.2)
	dd.DeadlineFactor = workload.Uniform{Lo: 1.1, Hi: 1.8}
	dd.DeadlineParallelism = 16
	be := workload.BestEffort("besteffort", 1.6)
	return []workload.TenantProfile{dd, be}
}

// fig9Expert is the badly tuned expert configuration: hair-trigger
// preemption timeouts for the deadline tenant, which shred the best-effort
// tenant's long reduces (scenario preset "hair-trigger").
func fig9Expert(capacity int) cluster.Config {
	return scenario.HairTriggerConfig(capacity)
}

// Figure9 is the utilization scenario (§8.2.2): the preemption-prone mix
// plus map/reduce effective-utilization SLOs whose targets are set to the
// levels measured under the expert configuration.
func Figure9(seed int64, iterations int) (*Figure9Result, error) {
	if iterations <= 0 {
		iterations = 15
	}
	mapKind := workload.Map
	redKind := workload.Reduce
	profiles := fig9Profiles()
	capacity := loopCapacity
	interval := 2 * time.Hour
	trace, err := workload.Generate(profiles, workload.GenerateOptions{Horizon: interval, Seed: seed + 977, Name: "fig9"})
	if err != nil {
		return nil, err
	}
	expert := fig9Expert(capacity)
	probe, err := cluster.Run(trace, expert, cluster.Options{Horizon: interval, Noise: cluster.DefaultNoise(seed + 4)})
	if err != nil {
		return nil, err
	}
	utilMapTpl := qs.Template{Metric: qs.Utilization, TaskKind: &mapKind, EffectiveOnly: true}
	utilRedTpl := qs.Template{Metric: qs.Utilization, TaskKind: &redKind, EffectiveOnly: true}
	dlTpl := qs.Template{Queue: "deadline", Metric: qs.DeadlineViolations, Slack: 0.25}
	end := probe.Horizon + time.Nanosecond
	// As in the paper, every r_i is the level measured under the expert
	// configuration: deadlines must not get worse, utilizations must not
	// drop, and the best-effort response time ratchets downward.
	templates := []qs.Template{
		dlTpl.WithTarget(dlTpl.Eval(probe, 0, end)),
		{Queue: "besteffort", Metric: qs.AvgResponseTime},
		utilMapTpl.WithTarget(utilMapTpl.Eval(probe, 0, end)),
		utilRedTpl.WithTarget(utilRedTpl.Eval(probe, 0, end)),
	}
	model, err := whatif.FromTrace(templates, trace)
	if err != nil {
		return nil, err
	}
	model.Horizon = interval
	model.Parallelism = Parallelism
	ctl, err := core.NewController(core.Config{
		Space:       cluster.DefaultSpace(capacity, []string{"deadline", "besteffort"}),
		Templates:   templates,
		Model:       model,
		Environment: &core.ReplayEnvironment{Trace: trace, Noise: cluster.DefaultNoise(seed + 13), Seed: seed},
		Interval:    interval,
		Candidates:  5,
		PALD:        pald.Options{Seed: seed + 29, MaxStep: 0.2},
	}, expert)
	if err != nil {
		return nil, err
	}
	history, err := ctl.Run(iterations)
	if err != nil {
		return nil, err
	}

	// Verify on a deterministic replay of the same workload: expert vs
	// final configuration.
	finalCfg := ctl.Current()
	sExpert, err := cluster.Run(trace, expert, cluster.Options{Horizon: interval})
	if err != nil {
		return nil, err
	}
	sFinal, err := cluster.Run(trace, finalCfg, cluster.Options{Horizon: interval})
	if err != nil {
		return nil, err
	}
	res := &Figure9Result{
		PreemptionsOriginal:  sExpert.PreemptionCount("", nil),
		PreemptionsOptimized: sFinal.PreemptionCount("", nil),
	}
	fill := func(s *cluster.Schedule, out *[4]float64) {
		e := s.Horizon + time.Nanosecond
		out[1] = qs.Template{Queue: "deadline", Metric: qs.DeadlineViolations, Slack: 0.25}.Eval(s, 0, e)
		out[2] = effectiveWorkFraction(s, workload.Map)
		out[3] = effectiveWorkFraction(s, workload.Reduce)
	}
	fill(sExpert, &res.Original)
	fill(sFinal, &res.Optimized)
	// AJR is compared over the jobs completed in *both* runs: the windowed
	// job set shifts when the configuration changes (more long jobs finish
	// under the better config), and a paired comparison removes that
	// survivorship bias.
	res.Original[0], res.Optimized[0] = pairedAJR(sExpert, sFinal, "besteffort")
	for i := range res.Original {
		if res.Original[i] != 0 {
			switch i {
			case 0, 1: // lower is better
				res.Improvements[i] = (res.Original[i] - res.Optimized[i]) / res.Original[i]
			default: // higher is better
				res.Improvements[i] = (res.Optimized[i] - res.Original[i]) / res.Original[i]
			}
		}
	}
	_ = history
	return res, nil
}

// pairedAJR returns the mean response time of the tenant's jobs that
// completed in both schedules.
func pairedAJR(a, b *cluster.Schedule, tenant string) (meanA, meanB float64) {
	respA := map[string]float64{}
	for i := range a.Jobs {
		j := &a.Jobs[i]
		if j.Tenant == tenant && j.Completed {
			respA[j.ID] = (j.Finish - j.Submit).Seconds()
		}
	}
	var sumA, sumB float64
	n := 0
	for i := range b.Jobs {
		j := &b.Jobs[i]
		if j.Tenant != tenant || !j.Completed {
			continue
		}
		ra, ok := respA[j.ID]
		if !ok {
			continue
		}
		sumA += ra
		sumB += (j.Finish - j.Submit).Seconds()
		n++
	}
	if n == 0 {
		return 0, 0
	}
	return sumA / float64(n), sumB / float64(n)
}

// effectiveWorkFraction returns useful/(useful+wasted) container time for
// one task kind.
func effectiveWorkFraction(s *cluster.Schedule, kind workload.TaskKind) float64 {
	var useful, wasted time.Duration
	for i := range s.Tasks {
		t := &s.Tasks[i]
		if t.Kind != kind {
			continue
		}
		switch t.Outcome {
		case cluster.TaskFinished:
			useful += t.Duration()
		case cluster.TaskPreempted, cluster.TaskFailed, cluster.TaskKilled:
			wasted += t.Duration()
		}
	}
	total := useful + wasted
	if total <= 0 {
		return 1
	}
	return float64(useful) / float64(total)
}

// Render prints the four-bar comparison.
func (r *Figure9Result) Render() string {
	names := []string{"AJR (s)", "DL fraction", "map effective-work", "reduce effective-work"}
	var rows [][]string
	for i, n := range names {
		rows = append(rows, []string{
			n,
			fmt.Sprintf("%.3f", r.Original[i]),
			fmt.Sprintf("%.3f", r.Optimized[i]),
			fmt.Sprintf("%+.1f%%", r.Improvements[i]*100),
		})
	}
	return fmt.Sprintf("Figure 9: SLOs under original vs optimized config (preempted attempts %d -> %d)\n",
		r.PreemptionsOriginal, r.PreemptionsOptimized) +
		table([]string{"SLO", "original", "optimized", "improvement"}, rows)
}

// Figure11Row is one control-interval length's outcome.
type Figure11Row struct {
	Interval time.Duration
	// NormalizedAJR is the final-half mean best-effort AJR divided by the
	// untuned (expert) baseline on the same trace.
	NormalizedAJR float64
	// DeadlinePct is the final-half deadline violation percentage.
	DeadlinePct float64
}

// Figure11Result is the adaptivity-to-interval-length experiment (§8.2.3).
type Figure11Result struct {
	BaselineDeadlinePct float64
	Rows                []Figure11Row
}

// Figure11 replays one drifting trace through the control loop with
// interval lengths of 15, 30, and 45 minutes, plus the untuned expert
// baseline, and compares the SLOs.
func Figure11(seed int64) (*Figure11Result, error) {
	horizon := 8 * time.Hour
	capacity := loopCapacity
	// A drifting workload: rates shift over the day.
	profiles := EC2TwoTenantProfiles(loopScale)
	for i := range profiles {
		profiles[i].Rate = workload.DiurnalWeekly(0.4, 1)
	}
	trace, err := workload.Generate(profiles, workload.GenerateOptions{Horizon: horizon, Seed: seed, Name: "fig11"})
	if err != nil {
		return nil, err
	}
	templates := []qs.Template{
		qs.Template{Queue: "deadline", Metric: qs.DeadlineViolations, Slack: 0.25}.WithTarget(0.0),
		{Queue: "besteffort", Metric: qs.AvgResponseTime},
	}
	expert := ExpertTwoTenantConfig(capacity)

	// Baseline: the whole trace under the untuned expert configuration.
	base, err := cluster.Run(trace, expert, cluster.Options{Horizon: horizon, Noise: cluster.DefaultNoise(seed + 7)})
	if err != nil {
		return nil, err
	}
	baseVals := qs.EvalStream(templates, base, 0, base.Horizon+time.Nanosecond)
	baseAJR := baseVals[1]
	res := &Figure11Result{BaselineDeadlinePct: baseVals[0] * 100}

	for _, interval := range []time.Duration{15 * time.Minute, 30 * time.Minute, 45 * time.Minute} {
		model, err := whatif.FromProfiles(templates, profiles, interval, seed+101)
		if err != nil {
			return nil, err
		}
		model.Parallelism = Parallelism
		env := &core.TraceEnvironment{Trace: trace, Noise: cluster.DefaultNoise(seed + 11), Seed: seed}
		ctl, err := core.NewController(core.Config{
			Space:       cluster.DefaultSpace(capacity, []string{"deadline", "besteffort"}),
			Templates:   templates,
			Model:       model,
			Environment: env,
			Interval:    interval,
			Candidates:  5,
			PALD:        pald.Options{Seed: seed + 31, MaxStep: 0.25},
		}, expert)
		if err != nil {
			return nil, err
		}
		iters := int(horizon / interval)
		history, err := ctl.Run(iters)
		if err != nil {
			return nil, err
		}
		half := history[len(history)/2:]
		var ajr, dl float64
		n := 0
		for _, it := range half {
			if it.Observed[1] > 0 {
				ajr += it.Observed[1]
				dl += it.Observed[0]
				n++
			}
		}
		if n > 0 {
			ajr /= float64(n)
			dl /= float64(n)
		}
		row := Figure11Row{Interval: interval, DeadlinePct: dl * 100}
		if baseAJR > 0 {
			row.NormalizedAJR = ajr / baseAJR
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the comparison.
func (r *Figure11Result) Render() string {
	rows := [][]string{{"original", "1.000", fmt.Sprintf("%.1f", r.BaselineDeadlinePct)}}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Interval.String(),
			fmt.Sprintf("%.3f", row.NormalizedAJR),
			fmt.Sprintf("%.1f", row.DeadlinePct),
		})
	}
	return "Figure 11: SLOs vs control-loop interval length\n" +
		table([]string{"interval", "AJR (norm)", "DL viol %"}, rows)
}

// Figure12Row is one source-cluster size's estimation errors.
type Figure12Row struct {
	SourceFraction float64 // 1.0, 0.5, 0.25
	// Errors are signed percentages for [best-effort latency,
	// deadline-driven latency, map utilization, reduce utilization].
	Errors [4]float64
	// MaxAbsError is the worst of the four.
	MaxAbsError float64
}

// Figure12Result is the resource-provisioning experiment (§8.2.4).
type Figure12Result struct {
	Rows []Figure12Row
}

// Figure12 estimates the SLOs of the full-size (100%) cluster using traces
// collected on 100%, 50%, and 25% clusters: each source run's observed
// schedule is harvested into a trace, statistical profiles are re-fitted
// from it, and the What-if Model predicts the full cluster's SLOs, which
// are compared against the measured ground truth.
func Figure12(seed int64) (*Figure12Result, error) {
	horizon := 6 * time.Hour
	fullCapacity := EC2Capacity
	profiles := TwoTenantProfiles(1.3)
	trace, err := workload.Generate(profiles, workload.GenerateOptions{Horizon: horizon, Seed: seed, Name: "fig12"})
	if err != nil {
		return nil, err
	}
	cfgFor := func(capacity int) cluster.Config {
		return ExpertTwoTenantConfig(capacity)
	}
	mapKind := workload.Map
	redKind := workload.Reduce
	templates := []qs.Template{
		{Queue: "besteffort", Metric: qs.AvgResponseTime},
		{Queue: "deadline", Metric: qs.AvgResponseTime},
		{Queue: "", Metric: qs.Utilization, TaskKind: &mapKind},
		{Queue: "", Metric: qs.Utilization, TaskKind: &redKind},
	}
	// Ground truth: the workload on the 100% cluster.
	truthSched, err := cluster.Run(trace, cfgFor(fullCapacity), cluster.Options{Horizon: horizon, Noise: cluster.DefaultNoise(seed + 17)})
	if err != nil {
		return nil, err
	}
	truth := qs.EvalStream(templates, truthSched, 0, truthSched.Horizon+time.Nanosecond)

	res := &Figure12Result{}
	for _, frac := range []float64{1.0, 0.5, 0.25} {
		srcCapacity := int(float64(fullCapacity) * frac)
		srcSched, err := cluster.Run(trace, cfgFor(srcCapacity), cluster.Options{Horizon: horizon, Noise: cluster.DefaultNoise(seed + 19)})
		if err != nil {
			return nil, err
		}
		harvested := ReconstructTrace(srcSched, fmt.Sprintf("harvest-%.0f%%", frac*100))
		fitted, err := workload.FitAll(harvested)
		if err != nil {
			return nil, err
		}
		model, err := whatif.FromProfiles(templates, fitted, horizon, seed+23)
		if err != nil {
			return nil, err
		}
		model.Samples = 2
		model.Horizon = horizon
		model.Parallelism = Parallelism
		est, err := model.Evaluate(cfgFor(fullCapacity))
		if err != nil {
			return nil, err
		}
		row := Figure12Row{SourceFraction: frac}
		for i := range truth {
			if truth[i] != 0 {
				row.Errors[i] = (est[i] - truth[i]) / truth[i] * 100
			}
			if a := abs(row.Errors[i]); a > row.MaxAbsError {
				row.MaxAbsError = a
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Render prints the estimation-error bars.
func (r *Figure12Result) Render() string {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f%% nodes", row.SourceFraction*100),
			fmt.Sprintf("%+.1f", row.Errors[0]),
			fmt.Sprintf("%+.1f", row.Errors[1]),
			fmt.Sprintf("%+.1f", row.Errors[2]),
			fmt.Sprintf("%+.1f", row.Errors[3]),
			fmt.Sprintf("%.1f", row.MaxAbsError),
		})
	}
	return "Figure 12: SLO estimation error (%) predicting the 100% cluster from smaller-cluster traces\n" +
		table([]string{"source", "BE latency", "DL latency", "map util", "red util", "max |err|"}, rows)
}

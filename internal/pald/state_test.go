package pald

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"tempo/internal/linalg"
)

// drive feeds the optimizer a deterministic pseudo-workload: n rounds of
// Observe + Propose, returning every proposal made.
func driveState(t *testing.T, p *Optimizer, src *rand.Rand, rounds, candidates int) [][]linalg.Vector {
	t.Helper()
	var out [][]linalg.Vector
	dim := p.Dim()
	x := linalg.NewVector(dim)
	for i := range x {
		x[i] = 0.5
	}
	for r := 0; r < rounds; r++ {
		f := []float64{src.Float64(), src.Float64()}
		if err := p.Observe(x, f); err != nil {
			t.Fatal(err)
		}
		cands, err := p.Propose(x, f, candidates)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, cands)
		if len(cands) > 0 {
			x = cands[0]
		}
	}
	return out
}

// TestStateRoundTrip drives an optimizer halfway, snapshots, restores the
// snapshot into a freshly constructed optimizer, and checks the second
// half of both trajectories is bit-identical — proposals and all, i.e.
// the RNG position survived the round trip (through JSON, like the real
// snapshot path).
func TestStateRoundTrip(t *testing.T) {
	const dim, rounds, candidates = 4, 12, 3
	targets := []Target{{R: 0.5, Constrained: true}, {}}
	opts := Options{Seed: 42}

	build := func() *Optimizer {
		p, err := New(dim, targets, opts)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	// Reference trajectory: one optimizer, driven end to end.
	ref := build()
	refWorkload := rand.New(rand.NewSource(7))
	refOut := driveState(t, ref, refWorkload, rounds, candidates)

	// Snapshotted trajectory: drive halfway, snapshot through JSON,
	// restore into a fresh optimizer, drive the rest.
	half := rounds / 2
	a := build()
	workload := rand.New(rand.NewSource(7))
	driveState(t, a, workload, half, candidates)

	raw, err := json.Marshal(a.State())
	if err != nil {
		t.Fatal(err)
	}
	var st State
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	b := build()
	if err := b.Restore(&st); err != nil {
		t.Fatal(err)
	}
	if b.SampleCount() != a.SampleCount() {
		t.Fatalf("restored sample count %d, want %d", b.SampleCount(), a.SampleCount())
	}

	// The workload stream continues where the first half left off, and the
	// restored optimizer must continue where the original left off — the
	// proposals must match the reference's second half exactly. The first
	// proposal of each round feeds back as the next x exactly as drive did
	// for the reference, so any drift compounds and is caught.
	x := linalg.NewVector(dim)
	for i := range x {
		x[i] = 0.5
	}
	if half > 0 {
		x = refOut[half-1][0]
	}
	for r := half; r < rounds; r++ {
		f := []float64{workload.Float64(), workload.Float64()}
		if err := b.Observe(x, f); err != nil {
			t.Fatal(err)
		}
		cands, err := b.Propose(x, f, candidates)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cands, refOut[r]) {
			t.Fatalf("round %d proposals diverge after restore:\n got %v\nwant %v", r, cands, refOut[r])
		}
		x = cands[0]
	}
}

// TestRestoreValidates rejects mismatched state shapes.
func TestRestoreValidates(t *testing.T) {
	p, err := New(3, []Target{{}}, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Restore(nil); err == nil {
		t.Error("nil state accepted")
	}
	if err := p.Restore(&State{Xs: [][]float64{{1, 2}}, Fs: [][]float64{{0}}}); err == nil {
		t.Error("wrong-dimension observation accepted")
	}
	if err := p.Restore(&State{Xs: [][]float64{{1, 2, 3}}, Fs: [][]float64{{0, 0}}}); err == nil {
		t.Error("wrong objective count accepted")
	}
	if err := p.Restore(&State{Xs: [][]float64{{1, 2, 3}}, Fs: [][]float64{}}); err == nil {
		t.Error("mismatched history lengths accepted")
	}
}

// TestCountingSourceTransparency locks the wrapper's value stream to the
// unwrapped source's: wrapping must not perturb any golden trajectory.
func TestCountingSourceTransparency(t *testing.T) {
	plain := rand.New(rand.NewSource(99))
	counted := rand.New(newCountingSource(99))
	for i := 0; i < 1000; i++ {
		if a, b := plain.Int63(), counted.Int63(); a != b {
			t.Fatalf("Int63 #%d: %d != %d", i, a, b)
		}
		if a, b := plain.Float64(), counted.Float64(); a != b {
			t.Fatalf("Float64 #%d: %v != %v", i, a, b)
		}
		if a, b := plain.NormFloat64(), counted.NormFloat64(); a != b {
			t.Fatalf("NormFloat64 #%d: %v != %v", i, a, b)
		}
		if a, b := plain.Uint64(), counted.Uint64(); a != b {
			t.Fatalf("Uint64 #%d: %d != %d", i, a, b)
		}
	}
}

package workload

import (
	"math"
	"testing"
	"time"
)

func simpleProfile(name string, rate float64) TenantProfile {
	return TenantProfile{
		Name:        name,
		JobsPerHour: rate,
		NumMaps:     Constant(2),
		MapSeconds:  Constant(10),
	}
}

func TestGenerateDeterministic(t *testing.T) {
	profiles := []TenantProfile{simpleProfile("A", 20)}
	opts := GenerateOptions{Horizon: 4 * time.Hour, Seed: 42, Name: "det"}
	a, err := Generate(profiles, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(profiles, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Jobs) != len(b.Jobs) {
		t.Fatalf("nondeterministic: %d vs %d jobs", len(a.Jobs), len(b.Jobs))
	}
	for i := range a.Jobs {
		if a.Jobs[i].ID != b.Jobs[i].ID || a.Jobs[i].Submit != b.Jobs[i].Submit {
			t.Fatalf("job %d differs: %+v vs %+v", i, a.Jobs[i], b.Jobs[i])
		}
	}
}

func TestGenerateSeedChangesTrace(t *testing.T) {
	profiles := []TenantProfile{simpleProfile("A", 20)}
	a, _ := Generate(profiles, GenerateOptions{Horizon: 4 * time.Hour, Seed: 1})
	b, _ := Generate(profiles, GenerateOptions{Horizon: 4 * time.Hour, Seed: 2})
	if len(a.Jobs) == len(b.Jobs) {
		same := true
		for i := range a.Jobs {
			if a.Jobs[i].Submit != b.Jobs[i].Submit {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestGeneratePoissonRateApproximate(t *testing.T) {
	profiles := []TenantProfile{simpleProfile("A", 30)}
	tr, err := Generate(profiles, GenerateOptions{Horizon: 100 * time.Hour, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	got := float64(len(tr.Jobs)) / 100
	if math.Abs(got-30) > 3 {
		t.Fatalf("generated rate = %v jobs/hr, want ≈ 30", got)
	}
}

func TestGenerateAddingTenantPreservesOthers(t *testing.T) {
	a := simpleProfile("A", 10)
	b := simpleProfile("B", 15)
	opts := GenerateOptions{Horizon: 10 * time.Hour, Seed: 11}
	solo, _ := Generate([]TenantProfile{a}, opts)
	both, _ := Generate([]TenantProfile{a, b}, opts)
	soloA := solo.ByTenant("A")
	bothA := both.ByTenant("A")
	if len(soloA) != len(bothA) {
		t.Fatalf("tenant A job count changed: %d vs %d", len(soloA), len(bothA))
	}
	for i := range soloA {
		if soloA[i].Submit != bothA[i].Submit {
			t.Fatal("tenant A arrivals changed when B was added")
		}
	}
}

func TestGenerateValidTraces(t *testing.T) {
	tr, err := Generate(CompanyABC(1), GenerateOptions{Horizon: 6 * time.Hour, Seed: 5, Name: "abc"})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Tenants()) != 6 {
		t.Fatalf("tenants = %v, want 6 ABC tenants", tr.Tenants())
	}
}

func TestGenerateDeadlinesOnlyForDeadlineProfiles(t *testing.T) {
	tr, err := Generate(CompanyABC(1), GenerateOptions{Horizon: 12 * time.Hour, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	withDeadline := map[string]bool{"APP": true, "MV": true, "ETL": true}
	for i := range tr.Jobs {
		j := &tr.Jobs[i]
		hasDL := j.Deadline > 0
		if hasDL != withDeadline[j.Tenant] {
			t.Fatalf("tenant %s deadline presence = %v, want %v", j.Tenant, hasDL, withDeadline[j.Tenant])
		}
		if hasDL && j.Deadline <= j.Submit {
			t.Fatalf("job %s deadline %v before submit %v", j.ID, j.Deadline, j.Submit)
		}
	}
}

func TestGenerateRejectsBadInput(t *testing.T) {
	if _, err := Generate(nil, GenerateOptions{}); err == nil {
		t.Fatal("zero horizon accepted")
	}
	bad := simpleProfile("", 10)
	if _, err := Generate([]TenantProfile{bad}, GenerateOptions{Horizon: time.Hour}); err == nil {
		t.Fatal("empty profile name accepted")
	}
	noRate := simpleProfile("X", 0)
	if _, err := Generate([]TenantProfile{noRate}, GenerateOptions{Horizon: time.Hour}); err == nil {
		t.Fatal("zero rate accepted")
	}
	noMaps := TenantProfile{Name: "X", JobsPerHour: 1}
	if _, err := Generate([]TenantProfile{noMaps}, GenerateOptions{Horizon: time.Hour}); err == nil {
		t.Fatal("missing map dists accepted")
	}
	halfRed := TenantProfile{Name: "X", JobsPerHour: 1, NumMaps: Constant(1), MapSeconds: Constant(1), NumReduces: Constant(1)}
	if _, err := Generate([]TenantProfile{halfRed}, GenerateOptions{Horizon: time.Hour}); err == nil {
		t.Fatal("reduce count without durations accepted")
	}
}

func TestDiurnalWeeklyShape(t *testing.T) {
	m := DiurnalWeekly(0.2, 0.5)
	noon := m(12 * time.Hour)
	midnight := m(0)
	if noon <= midnight {
		t.Fatalf("noon %v should exceed midnight %v", noon, midnight)
	}
	weekdayNoon := m(12 * time.Hour)
	saturdayNoon := m((5*24 + 12) * time.Hour)
	if saturdayNoon >= weekdayNoon {
		t.Fatalf("weekend %v should be below weekday %v", saturdayNoon, weekdayNoon)
	}
	if math.Abs(saturdayNoon-0.5*weekdayNoon) > 1e-9 {
		t.Fatalf("weekend factor off: %v vs %v", saturdayNoon, weekdayNoon)
	}
}

func TestPeriodicModulator(t *testing.T) {
	m := Periodic(time.Hour, 10*time.Minute, 0.1, 5)
	if m(5*time.Minute) != 5 {
		t.Fatal("inside burst should be boosted")
	}
	if m(30*time.Minute) != 0.1 {
		t.Fatal("outside burst should be floored")
	}
	if m(65*time.Minute) != 5 {
		t.Fatal("burst should repeat each period")
	}
	if Periodic(0, 0, 0.1, 5)(time.Minute) != 1 {
		t.Fatal("zero period should be identity")
	}
}

func TestModulatedRateWeekendDip(t *testing.T) {
	p := simpleProfile("A", 40)
	p.Rate = DiurnalWeekly(1, 0.2) // weekend-only effect
	tr, err := Generate([]TenantProfile{p}, GenerateOptions{Horizon: 7 * 24 * time.Hour, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	weekday, weekend := 0, 0
	for i := range tr.Jobs {
		day := int(tr.Jobs[i].Submit.Hours()/24) % 7
		if day >= 5 {
			weekend++
		} else {
			weekday++
		}
	}
	perWeekday := float64(weekday) / 5
	perWeekend := float64(weekend) / 2
	if perWeekend > perWeekday*0.5 {
		t.Fatalf("weekend rate %v not clearly below weekday %v", perWeekend, perWeekday)
	}
}

func TestFitRecoversRateAndScale(t *testing.T) {
	orig := TenantProfile{
		Name:          "T",
		JobsPerHour:   20,
		NumMaps:       Clamped{D: LognormalFromMean(10, 0.5), Lo: 1, Hi: 100},
		NumReduces:    Clamped{D: Constant(3), Lo: 0, Hi: 10},
		MapSeconds:    Clamped{D: LognormalFromMean(30, 0.5), Lo: 1, Hi: 600},
		ReduceSeconds: Clamped{D: LognormalFromMean(60, 0.5), Lo: 1, Hi: 600},
	}
	tr, err := Generate([]TenantProfile{orig}, GenerateOptions{Horizon: 50 * time.Hour, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	fit, err := Fit(tr, "T")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.JobsPerHour-20) > 3 {
		t.Fatalf("fitted rate = %v, want ≈ 20", fit.JobsPerHour)
	}
	if m := fit.MapSeconds.Mean(); math.Abs(m-30) > 10 {
		t.Fatalf("fitted map seconds mean = %v, want ≈ 30", m)
	}
	if fit.NumReduces == nil {
		t.Fatal("fitted profile lost reduces")
	}
}

func TestFitUnknownTenant(t *testing.T) {
	tr := &Trace{Horizon: time.Hour}
	if _, err := Fit(tr, "nope"); err == nil {
		t.Fatal("unknown tenant accepted")
	}
}

func TestFitAllCoversTenants(t *testing.T) {
	tr, err := Generate(CompanyABC(1), GenerateOptions{Horizon: 8 * time.Hour, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	profiles, err := FitAll(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != len(tr.Tenants()) {
		t.Fatalf("fitted %d profiles for %d tenants", len(profiles), len(tr.Tenants()))
	}
	// Fitted profiles must themselves generate valid traces.
	rt, err := Generate(profiles, GenerateOptions{Horizon: 2 * time.Hour, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFitDeadlineFactors(t *testing.T) {
	p := DeadlineDriven("D", 2)
	tr, err := Generate([]TenantProfile{p}, GenerateOptions{Horizon: 20 * time.Hour, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	fit, err := Fit(tr, "D")
	if err != nil {
		t.Fatal(err)
	}
	if fit.DeadlineFactor == nil {
		t.Fatal("deadline factors not fitted")
	}
}

func TestProfileMeansReasonable(t *testing.T) {
	for _, p := range CompanyABC(1) {
		if p.MapSeconds.Mean() <= 0 {
			t.Errorf("%s map seconds mean %v", p.Name, p.MapSeconds.Mean())
		}
		if p.JobsPerHour <= 0 {
			t.Errorf("%s rate %v", p.Name, p.JobsPerHour)
		}
	}
	for _, p := range []TenantProfile{DeadlineDriven("d", 1), BestEffort("b", 1), Facebook("f", 1), Cloudera("c", 1)} {
		if err := p.validate(); err != nil {
			t.Errorf("profile %s invalid: %v", p.Name, err)
		}
	}
	// scale <= 0 falls back to 1.
	if CompanyABC(0)[0].JobsPerHour != CompanyABC(1)[0].JobsPerHour {
		t.Error("scale 0 not defaulted")
	}
}

func TestIdealDurationRespectsParallelism(t *testing.T) {
	j := NewMapReduceJob("j", "T", 0,
		[]time.Duration{10 * time.Second, 10 * time.Second, 10 * time.Second, 10 * time.Second},
		nil)
	serial := idealDuration(&j, 1)
	if serial != 40*time.Second {
		t.Fatalf("serial = %v, want 40s", serial)
	}
	par := idealDuration(&j, 4)
	if par != 10*time.Second {
		t.Fatalf("4-way = %v, want 10s", par)
	}
	if idealDuration(&j, 0) != serial {
		t.Fatal("parallelism < 1 should clamp to 1")
	}
}

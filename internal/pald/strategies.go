package pald

import (
	"fmt"
	"math/rand"

	"tempo/internal/linalg"
	"tempo/internal/loess"
)

// Strategy is the interface Tempo's control loop programs against: observe
// measurements, propose candidate configurations. PALD is the primary
// implementation; the baselines below exist for the ablation benchmarks
// (weighted-sum scalarization and random search, §6.2/§9).
type Strategy interface {
	// Name identifies the strategy in reports.
	Name() string
	// Observe records a (configuration, QS vector) measurement.
	Observe(x linalg.Vector, f []float64) error
	// Propose returns up to n candidates around the current configuration.
	Propose(x linalg.Vector, f []float64, n int) ([]linalg.Vector, error)
}

// PredictionObserver is the optional score-feedback side of a Strategy:
// the control loop hands back each scored candidate's *predicted* QS
// vector, not just the applied configuration's measurement. A strategy
// that implements it declares that it learns from every scored
// candidate — so the controller must score all of its proposals. A
// strategy that does not (RandomSearch keeps no model) frees the
// controller to skip candidates that provably cannot win, which is what
// licenses bound-based pruning in core.Controller.Step.
type PredictionObserver interface {
	// ObservePrediction records a (candidate, predicted QS vector) pair.
	ObservePrediction(x linalg.Vector, f []float64) error
}

// Name implements Strategy.
func (p *Optimizer) Name() string { return "pald" }

// ObservePrediction implements PredictionObserver: PALD's LOESS gradient
// model treats predicted candidate scores exactly like measurements, so
// the delegation is bit-identical to the controller's historical
// strategy.Observe call on each scored candidate.
func (p *Optimizer) ObservePrediction(x linalg.Vector, f []float64) error { return p.Observe(x, f) }

var _ Strategy = (*Optimizer)(nil)
var _ PredictionObserver = (*Optimizer)(nil)

// WeightedSum is the classic scalarization baseline: descend the uniformly
// weighted sum of QS gradients, ignoring constraint structure (ρ = 0 in
// the proxy model). Section 6.3 shows why this can violate SLO constraints
// that PALD honors.
type WeightedSum struct {
	inner *Optimizer
}

// NewWeightedSum builds the baseline over the same machinery as PALD but
// with constraints stripped.
func NewWeightedSum(dim, objectives int, opts Options) (*WeightedSum, error) {
	targets := make([]Target, objectives)
	inner, err := New(dim, targets, opts) // no Constrained targets → ρ=0, uniform c
	if err != nil {
		return nil, err
	}
	return &WeightedSum{inner: inner}, nil
}

// Name implements Strategy.
func (w *WeightedSum) Name() string { return "weighted-sum" }

// Observe implements Strategy.
func (w *WeightedSum) Observe(x linalg.Vector, f []float64) error { return w.inner.Observe(x, f) }

// Propose implements Strategy.
func (w *WeightedSum) Propose(x linalg.Vector, f []float64, n int) ([]linalg.Vector, error) {
	return w.inner.Propose(x, f, n)
}

// ObservePrediction implements PredictionObserver by delegating to the
// inner optimizer, like Observe.
func (w *WeightedSum) ObservePrediction(x linalg.Vector, f []float64) error {
	return w.inner.Observe(x, f)
}

var _ Strategy = (*WeightedSum)(nil)
var _ PredictionObserver = (*WeightedSum)(nil)

// RandomSearch proposes uniformly random points inside the trust region —
// the no-model baseline. With the same what-if budget, PALD's gradient
// steps should dominate it.
type RandomSearch struct {
	dim     int
	maxStep float64
	rng     *rand.Rand
}

// NewRandomSearch builds the baseline.
func NewRandomSearch(dim int, maxStep float64, seed int64) (*RandomSearch, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("pald: non-positive dimension %d", dim)
	}
	if maxStep <= 0 {
		maxStep = 0.15
	}
	return &RandomSearch{dim: dim, maxStep: maxStep, rng: rand.New(rand.NewSource(seed))}, nil
}

// Name implements Strategy.
func (r *RandomSearch) Name() string { return "random-search" }

// Observe implements Strategy (random search keeps no model).
func (r *RandomSearch) Observe(linalg.Vector, []float64) error { return nil }

// Propose implements Strategy.
func (r *RandomSearch) Propose(x linalg.Vector, _ []float64, n int) ([]linalg.Vector, error) {
	if len(x) != r.dim {
		return nil, fmt.Errorf("pald: proposal dim %d != %d", len(x), r.dim)
	}
	out := make([]linalg.Vector, 0, n)
	for i := 0; i < n; i++ {
		d := linalg.NewVector(r.dim)
		for j := range d {
			d[j] = r.rng.NormFloat64()
		}
		// The step draw is unconditional so every proposal consumes a fixed
		// number of RNG draws. Skipping it on a degenerate (~zero-norm)
		// direction made the draw count value-dependent, which desyncs any
		// draw-count-based resume (pald.State counts draws). Drawing after
		// the direction loop keeps the stream identical to the old code on
		// the non-degenerate path.
		step := r.rng.Float64()
		if norm := d.Norm(); norm > 1e-12 {
			d = d.Scale(r.maxStep * step / norm)
		}
		out = append(out, x.Add(d).Clamp(0, 1))
	}
	return out, nil
}

var _ Strategy = (*RandomSearch)(nil)

// FiniteDifference estimates gradients by coordinate-wise central
// differences through an evaluation callback instead of LOESS history. It
// exists for the gradient-estimator ablation: under noise it needs many
// more evaluations than LOESS for comparable directions.
type FiniteDifference struct {
	dim  int
	eval func(linalg.Vector) ([]float64, error)
	h    float64
}

// NewFiniteDifference builds the estimator with step h (default 0.02).
func NewFiniteDifference(dim int, h float64, eval func(linalg.Vector) ([]float64, error)) (*FiniteDifference, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("pald: non-positive dimension %d", dim)
	}
	if eval == nil {
		return nil, fmt.Errorf("pald: nil evaluator")
	}
	if h <= 0 {
		h = 0.02
	}
	return &FiniteDifference{dim: dim, eval: eval, h: h}, nil
}

// Jacobian estimates ∇f at x; it costs 2·dim evaluations.
func (fd *FiniteDifference) Jacobian(x linalg.Vector, objectives int) (*linalg.Matrix, error) {
	jac := linalg.NewMatrix(objectives, fd.dim)
	for j := 0; j < fd.dim; j++ {
		hi := x.Clone()
		lo := x.Clone()
		hi[j] += fd.h
		lo[j] -= fd.h
		hi.Clamp(0, 1)
		lo.Clamp(0, 1)
		span := hi[j] - lo[j]
		if span == 0 {
			continue
		}
		fHi, err := fd.eval(hi)
		if err != nil {
			return nil, err
		}
		fLo, err := fd.eval(lo)
		if err != nil {
			return nil, err
		}
		for i := 0; i < objectives; i++ {
			jac.Set(i, j, (fHi[i]-fLo[i])/span)
		}
	}
	return jac, nil
}

// LoessJacobian exposes PALD's internal LOESS gradient estimate for the
// ablation benchmarks.
func LoessJacobian(xs []linalg.Vector, fs [][]float64, x linalg.Vector, span float64) (*linalg.Matrix, error) {
	if len(xs) == 0 || len(xs) != len(fs) {
		return nil, fmt.Errorf("pald: bad sample set (%d xs, %d fs)", len(xs), len(fs))
	}
	objectives := len(fs[0])
	jac := linalg.NewMatrix(objectives, len(x))
	samples := make([]loess.Sample, len(xs))
	for i := 0; i < objectives; i++ {
		for j := range xs {
			samples[j] = loess.Sample{X: xs[j], Y: fs[j][i]}
		}
		g, err := loess.Gradient(samples, x, loess.Options{Span: span})
		if err != nil {
			return nil, err
		}
		copy(jac.Row(i), g)
	}
	return jac, nil
}

package cluster

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"strings"
	"testing"
	"time"
)

func exportSchedule(t *testing.T) *Schedule {
	t.Helper()
	a := job("a", "A", 0, 2, 10*time.Second)
	b := job("b", "B", 5*time.Second, 1, 20*time.Second)
	b.Deadline = time.Minute
	s, err := Predict(mkTrace(a, b), cfg2(4, TenantConfig{Weight: 1}, TenantConfig{Weight: 1}))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestWriteTasksCSV(t *testing.T) {
	s := exportSchedule(t)
	var buf bytes.Buffer
	if err := s.WriteTasksCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != len(s.Tasks)+1 {
		t.Fatalf("rows = %d, want %d", len(records), len(s.Tasks)+1)
	}
	if strings.Join(records[0], ",") != "job_id,tenant,kind,attempt,start_sec,end_sec,outcome" {
		t.Fatalf("header = %v", records[0])
	}
	for _, rec := range records[1:] {
		if len(rec) != 7 {
			t.Fatalf("row width = %d", len(rec))
		}
		start, err := strconv.ParseFloat(rec[4], 64)
		if err != nil {
			t.Fatal(err)
		}
		end, err := strconv.ParseFloat(rec[5], 64)
		if err != nil {
			t.Fatal(err)
		}
		if end < start {
			t.Fatalf("end %v before start %v", end, start)
		}
		if rec[6] != "finished" {
			t.Fatalf("outcome = %q", rec[6])
		}
	}
}

func TestWriteJobsCSV(t *testing.T) {
	s := exportSchedule(t)
	var buf bytes.Buffer
	if err := s.WriteJobsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 {
		t.Fatalf("rows = %d, want 3", len(records))
	}
	byID := map[string][]string{}
	for _, rec := range records[1:] {
		byID[rec[0]] = rec
	}
	if byID["b"][4] != "60.000" {
		t.Fatalf("deadline column = %q", byID["b"][4])
	}
	if byID["a"][5] != "true" || byID["a"][6] != "false" {
		t.Fatalf("flags = %v", byID["a"])
	}
}

type failWriter struct{ after int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.after <= 0 {
		return 0, bytes.ErrTooLarge
	}
	f.after -= len(p)
	return len(p), nil
}

func TestWriteCSVPropagatesWriterErrors(t *testing.T) {
	s := exportSchedule(t)
	if err := s.WriteTasksCSV(&failWriter{}); err == nil {
		t.Fatal("writer error swallowed")
	}
	if err := s.WriteJobsCSV(&failWriter{}); err == nil {
		t.Fatal("writer error swallowed")
	}
}

package query

import (
	"math"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tempo/internal/qs"
	"tempo/internal/scenario"
)

// TestQueryVsOracleGoldens is the acceptance criterion from the ROADMAP:
// qs.EvalStream re-expressed as a query plan (an slos aggregate over the
// events relation) produces byte-identical QS values to the oracle on
// every committed golden scenario — each tick's rows against
// qs.EvalStream over that tick's full observation window, compared via
// Float64bits so -0 vs 0 and NaN payload drift would fail too.
func TestQueryVsOracleGoldens(t *testing.T) {
	specs, err := filepath.Glob(filepath.Join("..", "scenario", "testdata", "scenarios", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	for _, path := range specs {
		if strings.HasSuffix(path, ".golden.json") {
			continue
		}
		path := path
		name := strings.TrimSuffix(filepath.Base(path), ".json")
		ran++
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec, err := scenario.LoadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			rt, err := scenario.Build(spec, scenario.Options{Parallelism: 2})
			if err != nil {
				t.Fatal(err)
			}
			if len(rt.Templates) == 0 {
				t.Skip("scenario declares no SLO templates")
			}
			for !rt.Done() {
				if _, err := rt.Step(); err != nil {
					t.Fatal(err)
				}
			}
			plan := &Plan{
				Version: Version,
				Source:  "events",
				Ops:     []OpSpec{{Op: "aggregate", SLOs: rt.Templates}},
			}
			r, err := Compile(plan, rt.Interval)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < rt.StepsDone(); i++ {
				sched := rt.ObservedSchedule(i)
				rows, err := r.PushTick(i, sched)
				if err != nil {
					t.Fatal(err)
				}
				want := qs.EvalStream(rt.Templates, sched, 0, sched.Horizon+time.Nanosecond)
				if len(rows) != len(want) {
					t.Fatalf("tick %d: %d rows, want %d", i, len(rows), len(want))
				}
				for j, rw := range rows {
					got := rw.Values["value"]
					if math.Float64bits(got) != math.Float64bits(want[j]) {
						t.Fatalf("tick %d slo %d (%s): query %v != oracle %v",
							i, j, rt.Templates[j].Name(), got, want[j])
					}
				}
			}
		})
	}
	if ran < 10 {
		t.Fatalf("only %d scenarios exercised — the parity matrix must not shrink", ran)
	}
}

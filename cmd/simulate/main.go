// Command simulate runs the Schedule Predictor (or a noisy cluster
// emulation) over a JSON trace and reports the schedule summary plus QS
// metrics per tenant.
//
// Usage:
//
//	simulate -trace trace.json -capacity 80 [-config rm.json] [-noise] [-seed 7]
//
// With -compare, simulate instead scores several candidate RM
// configurations against the trace in one parallel What-if batch and prints
// a per-config QS table:
//
//	simulate -trace trace.json -compare a.json,b.json,c.json [-parallelism 8]
//
// When -config is omitted, every tenant runs with equal weight and no
// limits. The RM configuration file is the JSON form of the library's
// ClusterConfig:
//
//	{
//	  "total_containers": 80,
//	  "tenants": {
//	    "ETL": {"weight": 3, "min_share": 12, "max_share": 0,
//	            "share_preempt_timeout": 240000000000,
//	            "min_share_preempt_timeout": 45000000000}
//	  }
//	}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"tempo/internal/cluster"
	"tempo/internal/qs"
	"tempo/internal/whatif"
	"tempo/internal/workload"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "input trace JSON (required)")
		cfgPath   = flag.String("config", "", "RM configuration JSON (optional)")
		capacity  = flag.Int("capacity", 80, "cluster capacity when -config is omitted")
		noise     = flag.Bool("noise", false, "emulate a noisy production run instead of predicting")
		seed      = flag.Int64("seed", 1, "noise seed")
		hours     = flag.Float64("horizon-hours", 0, "cap the run at this many hours (0 = run to completion)")
		outTasks  = flag.String("out-tasks", "", "write the task schedule as CSV to this file")
		outJobs   = flag.String("out-jobs", "", "write job outcomes as CSV to this file")
		compare   = flag.String("compare", "", "comma-separated RM config JSON files to score in one what-if batch")
		par       = flag.Int("parallelism", 0, "what-if workers for -compare (0 = one per CPU)")
	)
	flag.Parse()
	if *compare != "" {
		// The what-if batch is a deterministic prediction over the whole
		// trace: the single-run flags don't apply, and silently ignoring
		// them would misreport what was scored.
		var conflicts []string
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "config", "capacity", "noise", "seed", "out-tasks", "out-jobs":
				conflicts = append(conflicts, "-"+f.Name)
			}
		})
		if len(conflicts) > 0 {
			fmt.Fprintf(os.Stderr, "simulate: -compare cannot be combined with %s\n", strings.Join(conflicts, ", "))
			os.Exit(1)
		}
		if err := runCompare(*tracePath, strings.Split(*compare, ","), *hours, *par); err != nil {
			fmt.Fprintln(os.Stderr, "simulate:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*tracePath, *cfgPath, *capacity, *noise, *seed, *hours, *outTasks, *outJobs); err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(1)
	}
}

// runCompare scores every candidate RM configuration against the trace in
// one What-if batch — the library's parallel candidate-scoring hot path,
// exposed on the command line.
func runCompare(tracePath string, cfgPaths []string, hours float64, parallelism int) error {
	if tracePath == "" {
		return fmt.Errorf("-trace is required")
	}
	trace, err := workload.LoadFile(tracePath)
	if err != nil {
		return err
	}
	var cfgs []cluster.Config
	for _, path := range cfgPaths {
		path = strings.TrimSpace(path)
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		var cfg cluster.Config
		if err := json.Unmarshal(raw, &cfg); err != nil {
			return fmt.Errorf("parsing %s: %w", path, err)
		}
		cfgs = append(cfgs, cfg)
	}
	var templates []qs.Template
	tenants := trace.Tenants()
	for _, tn := range tenants {
		templates = append(templates,
			qs.Template{Queue: tn, Metric: qs.AvgResponseTime},
			qs.Template{Queue: tn, Metric: qs.DeadlineViolations, Slack: 0.25})
	}
	model, err := whatif.FromTrace(templates, trace)
	if err != nil {
		return err
	}
	model.Horizon = time.Duration(hours * float64(time.Hour))
	if parallelism <= 0 {
		parallelism = whatif.DefaultParallelism()
	}
	model.Parallelism = parallelism
	start := time.Now()
	rows, err := model.EvaluateBatch(cfgs)
	if err != nil {
		return err
	}
	fmt.Printf("scored %d configs x %d tenants in %s (parallelism %d)\n\n",
		len(cfgs), len(tenants), time.Since(start).Round(time.Millisecond), parallelism)
	fmt.Printf("%-24s", "config")
	for _, tn := range tenants {
		fmt.Printf("  %*s  %*s", len(tn)+7, tn+" AJR(s)", len(tn)+7, tn+" DLviol")
	}
	fmt.Println()
	for i, path := range cfgPaths {
		fmt.Printf("%-24s", strings.TrimSpace(path))
		for t, tn := range tenants {
			fmt.Printf("  %*.1f  %*.3f", len(tn)+7, rows[i][2*t], len(tn)+7, rows[i][2*t+1])
		}
		fmt.Println()
	}
	return nil
}

func run(tracePath, cfgPath string, capacity int, noise bool, seed int64, hours float64, outTasks, outJobs string) error {
	if tracePath == "" {
		return fmt.Errorf("-trace is required")
	}
	trace, err := workload.LoadFile(tracePath)
	if err != nil {
		return err
	}
	cfg := cluster.Config{TotalContainers: capacity, Tenants: map[string]cluster.TenantConfig{}}
	if cfgPath != "" {
		raw, err := os.ReadFile(cfgPath)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(raw, &cfg); err != nil {
			return fmt.Errorf("parsing %s: %w", cfgPath, err)
		}
	}
	opts := cluster.Options{Horizon: time.Duration(hours * float64(time.Hour))}
	if noise {
		opts.Noise = cluster.DefaultNoise(seed)
	}
	start := time.Now()
	sched, err := cluster.Run(trace, cfg, opts)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	fmt.Println(sched)
	if secs := elapsed.Seconds(); secs > 0 {
		fmt.Printf("simulated %d tasks in %s (%.0f tasks/sec)\n",
			len(sched.Tasks), elapsed.Round(time.Millisecond), float64(len(sched.Tasks))/secs)
	}
	end := sched.Horizon + time.Nanosecond
	fmt.Printf("\n%-12s %8s %10s %10s %8s %9s\n", "tenant", "jobs", "AJR(s)", "DLviol", "util", "preempted")
	for _, tenant := range sched.Tenants() {
		ajr := qs.Template{Queue: tenant, Metric: qs.AvgResponseTime}.Eval(sched, 0, end)
		dl := qs.Template{Queue: tenant, Metric: qs.DeadlineViolations, Slack: 0.25}.Eval(sched, 0, end)
		util := -qs.Template{Queue: tenant, Metric: qs.Utilization}.Eval(sched, 0, end)
		jobs := len(sched.JobsByTenant(tenant))
		fmt.Printf("%-12s %8d %10.1f %10.3f %8.3f %9d\n",
			tenant, jobs, ajr, dl, util, sched.PreemptionCount(tenant, nil))
	}
	if outTasks != "" {
		if err := writeCSV(outTasks, sched.WriteTasksCSV); err != nil {
			return err
		}
	}
	if outJobs != "" {
		if err := writeCSV(outJobs, sched.WriteJobsCSV); err != nil {
			return err
		}
	}
	return nil
}

func writeCSV(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

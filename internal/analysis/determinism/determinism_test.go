package determinism_test

import (
	"testing"

	"tempo/internal/analysis"
	"tempo/internal/analysis/analysistest"
	"tempo/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	suite := []*analysis.Analyzer{determinism.Analyzer}
	diags := analysistest.Run(t, "testdata", suite, "a", "b", "ignored")
	if len(diags) == 0 {
		t.Fatalf("fixture produced no diagnostics; the positive cases are not being checked")
	}
}

func TestScopeIsDeclaredPackages(t *testing.T) {
	// The golden-locked packages must all be in scope: losing one to a
	// refactor would silently turn the analyzer off for it.
	want := []string{
		"tempo/internal/cluster",
		"tempo/internal/core",
		"tempo/internal/sim",
		"tempo/internal/qs",
		"tempo/internal/query",
		"tempo/internal/scenario",
		"tempo/internal/whatif",
		"tempo/internal/workload",
		"tempo/internal/store",
	}
	have := map[string]bool{}
	for _, p := range determinism.DeterministicPkgs {
		have[p] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("deterministic package %s missing from scope", w)
		}
	}
}

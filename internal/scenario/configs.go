package scenario

import (
	"time"

	"tempo/internal/cluster"
)

// This file holds the hand-tuned "expert" RM configurations scenarios (and
// the experiment harness, which delegates here) start from. They reflect
// how DBAs actually configure such clusters: deadline tenants get large
// weights, min shares, and aggressive preemption; best-effort tenants get
// leftovers and tight caps.

// ExpertABCConfig returns the expert configuration for the six Company ABC
// tenants of Table 1 — the baseline of the component-validation
// experiments.
func ExpertABCConfig(capacity int) cluster.Config {
	frac := func(f float64) int { return int(f * float64(capacity)) }
	return cluster.Config{
		TotalContainers: capacity,
		Tenants: map[string]cluster.TenantConfig{
			"BI":  {Weight: 1, MaxShare: frac(0.4)},
			"DEV": {Weight: 1, MaxShare: frac(0.3)},
			"APP": {Weight: 2, MinShare: frac(0.1), MinSharePreemptTimeout: 30 * time.Second, SharePreemptTimeout: 3 * time.Minute},
			"STR": {Weight: 1, MaxShare: frac(0.3)},
			"MV":  {Weight: 3, MinShare: frac(0.2), MinSharePreemptTimeout: time.Minute, SharePreemptTimeout: 5 * time.Minute},
			"ETL": {Weight: 3, MinShare: frac(0.15), MinSharePreemptTimeout: 45 * time.Second, SharePreemptTimeout: 4 * time.Minute},
		},
	}
}

// ExpertTwoTenantConfig is the skewed expert baseline of the two-tenant
// end-to-end scenarios (§8.2): the deadline tenant is over-provisioned with
// aggressive preemption; the best-effort tenant is capped hard.
func ExpertTwoTenantConfig(capacity int) cluster.Config {
	return cluster.Config{
		TotalContainers: capacity,
		Tenants: map[string]cluster.TenantConfig{
			"deadline": {
				Weight:                 2,
				MinShare:               capacity / 4,
				MaxShare:               capacity,
				MinSharePreemptTimeout: time.Minute,
				SharePreemptTimeout:    5 * time.Minute,
			},
			"besteffort": {
				Weight:   0.4,
				MaxShare: capacity/5 + 1,
			},
		},
	}
}

// HairTriggerConfig is the badly tuned §8.2.2 expert configuration:
// hair-trigger preemption timeouts for the deadline tenant, which shred any
// long-running best-effort work — the adversarial starting point of the
// preemption-waste scenarios.
func HairTriggerConfig(capacity int) cluster.Config {
	return cluster.Config{
		TotalContainers: capacity,
		Tenants: map[string]cluster.TenantConfig{
			"deadline": {
				Weight:                 2,
				MinShare:               capacity / 2,
				MinSharePreemptTimeout: 15 * time.Second,
				SharePreemptTimeout:    45 * time.Second,
			},
			"besteffort": {Weight: 1},
		},
	}
}

// Package ordercontract enforces the documented contract of the
// canonical schedule event stream: Schedule.Events()/AppendEvents()
// return events in the total order (Time, Kind, Seq), and window
// consumers treat [From, To) as half-open. The incremental QS path, the
// replay path, and (next on the roadmap) WAL recovery all assume every
// consumer preserves that order — a consumer that re-sorts by another
// key or appends concurrently produces a stream that replays into a
// different schedule.
//
// It reports, in any package:
//
//   - re-sorting an event stream obtained from Events/AppendEvents
//     (sort.Slice, slices.SortFunc, ...): the stream is already in
//     canonical order; sorting by a different key silently breaks the
//     total order, and by the same key is a no-op;
//   - appends or element writes to the stream from inside a goroutine
//     (go statement): concurrent unmerged appends interleave
//     nondeterministically; merge per-goroutine slices instead;
//   - half-open boundary misuse on Event.Time comparisons against
//     from/to window bounds: inclusion is Time >= from && Time < to,
//     so `Time <= to` (or `to >= Time`) double-counts the boundary
//     event in adjacent windows and `Time > from` drops it.
package ordercontract

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"tempo/internal/analysis"
)

// Analyzer is the ordercontract analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "ordercontract",
	Doc:  "flag event-stream consumers that re-sort, concurrently append, or misuse the half-open [From,To) window",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo

	// Streams: variables bound to Events()/AppendEvents() results.
	streams := map[types.Object]bool{}
	ast.Inspect(fd, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isEventsCall(info, call) {
				continue
			}
			var lhs ast.Expr
			if len(as.Rhs) == 1 && len(as.Lhs) >= 1 {
				lhs = as.Lhs[0]
			} else if i < len(as.Lhs) {
				lhs = as.Lhs[i]
			}
			if lhs == nil {
				continue
			}
			if obj := analysis.ObjectOf(info, lhs); obj != nil {
				streams[obj] = true
			}
		}
		return true
	})

	mentionsStream := func(e ast.Expr) bool {
		if call, ok := ast.Unparen(e).(*ast.CallExpr); ok && isEventsCall(info, call) {
			return true
		}
		obj := analysis.ObjectOf(info, e)
		return obj != nil && streams[obj]
	}

	ast.Inspect(fd, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if f := analysis.CalleeFunc(info, n); f != nil && f.Pkg() != nil && isSortFunc(f) {
				for _, arg := range n.Args {
					if mentionsStream(arg) {
						pass.Reportf(n.Pos(), "re-sorting a canonical event stream: Events() is already totally ordered by (Time, Kind, Seq); sorting by another key breaks the replay contract, by the same key is a wasted O(n log n)")
					}
				}
			}
		case *ast.GoStmt:
			checkConcurrentAppend(pass, fd, n, streams)
		case *ast.BinaryExpr:
			checkBoundary(pass, n)
		}
		return true
	})
}

func isEventsCall(info *types.Info, call *ast.CallExpr) bool {
	if _, ok := analysis.IsMethodCall(info, call, "Schedule", "Events"); ok {
		return true
	}
	_, ok := analysis.IsMethodCall(info, call, "Schedule", "AppendEvents")
	return ok
}

func isSortFunc(f *types.Func) bool {
	pkg := f.Pkg().Path()
	name := f.Name()
	switch pkg {
	case "sort":
		return name == "Sort" || name == "Stable" || strings.HasPrefix(name, "Slice")
	case "slices":
		return strings.HasPrefix(name, "Sort")
	}
	return false
}

// checkConcurrentAppend flags appends/writes to a stream variable from
// inside a go statement when the variable is declared outside it.
func checkConcurrentAppend(pass *analysis.Pass, fd *ast.FuncDecl, g *ast.GoStmt, streams map[types.Object]bool) {
	info := pass.TypesInfo
	ast.Inspect(g.Call, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			obj := analysis.ObjectOf(info, lhs)
			if obj == nil || !streams[obj] {
				// Also catch ev[i] = ... element writes.
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if o := analysis.ObjectOf(info, ix.X); o != nil && streams[o] && (o.Pos() < g.Pos() || o.Pos() > g.End()) {
						pass.Reportf(as.Pos(), "write into canonical event stream %q from a goroutine: concurrent unmerged writes reorder the stream nondeterministically", o.Name())
					}
				}
				continue
			}
			// Declared outside the goroutine?
			if obj.Pos() >= g.Pos() && obj.Pos() <= g.End() {
				continue
			}
			if i < len(as.Rhs) {
				if call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr); ok && analysis.IsBuiltinAppend(info, call) {
					pass.Reportf(as.Pos(), "concurrent append to canonical event stream %q from a goroutine: interleaving is nondeterministic and unsynchronized; collect per-goroutine slices and merge by EventLess", obj.Name())
					continue
				}
			}
			pass.Reportf(as.Pos(), "write to canonical event stream %q from a goroutine: the stream's total order is not goroutine-safe to mutate", obj.Name())
		}
		return true
	})
}

// checkBoundary flags Event.Time comparisons that violate the
// half-open [From, To) convention, matching bound operands by name
// (from/to, case-insensitive, any qualifier).
func checkBoundary(pass *analysis.Pass, b *ast.BinaryExpr) {
	timeExpr := func(e ast.Expr) bool {
		sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Time" {
			return false
		}
		tv, ok := pass.TypesInfo.Types[sel.X]
		return ok && analysis.NamedTypeName(tv.Type) == "Event"
	}
	boundName := func(e ast.Expr) string {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return strings.ToLower(x.Name)
		case *ast.SelectorExpr:
			return strings.ToLower(x.Sel.Name)
		}
		return ""
	}
	// Canonicalize to (Time op bound).
	var op token.Token
	var bound string
	switch {
	case timeExpr(b.X):
		op, bound = b.Op, boundName(b.Y)
	case timeExpr(b.Y):
		bound = boundName(b.X)
		switch b.Op {
		case token.LSS:
			op = token.GTR
		case token.GTR:
			op = token.LSS
		case token.LEQ:
			op = token.GEQ
		case token.GEQ:
			op = token.LEQ
		default:
			return
		}
	default:
		return
	}
	switch {
	case op == token.LEQ && bound == "to":
		pass.Reportf(b.Pos(), "Event.Time <= to violates the half-open [From,To) window: the boundary event would land in two adjacent windows; use <")
	case op == token.GTR && bound == "from":
		pass.Reportf(b.Pos(), "Event.Time > from violates the half-open [From,To) window: the boundary event would be dropped; use >=")
	}
}

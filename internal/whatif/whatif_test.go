package whatif

import (
	"errors"
	"testing"
	"time"

	"tempo/internal/cluster"
	"tempo/internal/qs"
	"tempo/internal/workload"
)

func testTemplates() []qs.Template {
	return []qs.Template{
		{Queue: "A", Metric: qs.AvgResponseTime},
		{Queue: "A", Metric: qs.Utilization},
	}
}

func testTrace(t *testing.T) *workload.Trace {
	t.Helper()
	tr, err := workload.Generate(
		[]workload.TenantProfile{workload.BestEffort("A", 1)},
		workload.GenerateOptions{Horizon: time.Hour, Seed: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestFromTraceEvaluate(t *testing.T) {
	m, err := FromTrace(testTemplates(), testTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.Config{TotalContainers: 20, Tenants: map[string]cluster.TenantConfig{"A": {Weight: 1}}}
	v, err := m.Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 2 {
		t.Fatalf("QS vector length %d", len(v))
	}
	if v[0] <= 0 {
		t.Fatalf("AJR = %v, want positive", v[0])
	}
	if v[1] >= 0 {
		t.Fatalf("UTIL = %v, want negative", v[1])
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	m, err := FromTrace(testTemplates(), testTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.Config{TotalContainers: 20, Tenants: map[string]cluster.TenantConfig{"A": {Weight: 1}}}
	a, _ := m.Evaluate(cfg)
	b, _ := m.Evaluate(cfg)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic evaluation: %v vs %v", a, b)
		}
	}
}

func TestEvaluateRespondsToCapacity(t *testing.T) {
	m, err := FromTrace(testTemplates(), testTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	small, _ := m.Evaluate(cluster.Config{TotalContainers: 5, Tenants: map[string]cluster.TenantConfig{"A": {Weight: 1}}})
	big, _ := m.Evaluate(cluster.Config{TotalContainers: 60, Tenants: map[string]cluster.TenantConfig{"A": {Weight: 1}}})
	if big[0] >= small[0] {
		t.Fatalf("AJR should improve with capacity: %v vs %v", big[0], small[0])
	}
}

func TestFromProfilesAveragesSamples(t *testing.T) {
	m, err := FromProfiles(testTemplates(),
		[]workload.TenantProfile{workload.BestEffort("A", 1)},
		time.Hour, 42)
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.Config{TotalContainers: 20, Tenants: map[string]cluster.TenantConfig{"A": {Weight: 1}}}
	m.Samples = 1
	one, err := m.Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Samples = 4
	four, err := m.Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Averaging over different draws should generally move the value.
	if one[0] == four[0] {
		t.Log("averaged value equals single sample; suspicious but not fatal")
	}
	if four[0] <= 0 {
		t.Fatalf("averaged AJR = %v", four[0])
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, func(int) (*workload.Trace, error) { return nil, nil }); err == nil {
		t.Fatal("empty templates accepted")
	}
	if _, err := New(testTemplates(), nil); err == nil {
		t.Fatal("nil generator accepted")
	}
	bad := []qs.Template{{Queue: "", Metric: qs.AvgResponseTime}}
	if _, err := New(bad, func(int) (*workload.Trace, error) { return nil, nil }); err == nil {
		t.Fatal("invalid template accepted")
	}
	if _, err := FromTrace(testTemplates(), nil); err == nil {
		t.Fatal("nil trace accepted")
	}
}

func TestEvaluatePropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	m, err := New(testTemplates(), func(int) (*workload.Trace, error) { return nil, boom })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Evaluate(cluster.Config{TotalContainers: 1}); !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
	// Bad config surfaces the cluster error.
	m2, _ := FromTrace(testTemplates(), testTrace(t))
	if _, err := m2.Evaluate(cluster.Config{TotalContainers: 0}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestEvaluateSchedule(t *testing.T) {
	m, err := FromTrace(testTemplates(), testTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.Config{TotalContainers: 20, Tenants: map[string]cluster.TenantConfig{"A": {Weight: 1}}}
	sched, err := cluster.Predict(testTrace(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	v := m.EvaluateSchedule(sched)
	direct, _ := m.Evaluate(cfg)
	for i := range v {
		if v[i] != direct[i] {
			t.Fatalf("EvaluateSchedule %v != Evaluate %v", v, direct)
		}
	}
}

func TestHorizonCapsPrediction(t *testing.T) {
	m, err := FromTrace(testTemplates(), testTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	m.Horizon = 10 * time.Minute
	cfg := cluster.Config{TotalContainers: 20, Tenants: map[string]cluster.TenantConfig{"A": {Weight: 1}}}
	v, err := m.Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 2 {
		t.Fatal("vector length")
	}
}

package core

import (
	"math"
	"reflect"
	"testing"
	"time"

	"tempo/internal/cluster"
	"tempo/internal/linalg"
	"tempo/internal/pald"
	"tempo/internal/qs"
	"tempo/internal/whatif"
	"tempo/internal/workload"
)

// TestImprovementTable (PR-8 satellite): the ~zero-first guard must fire
// before the tail computation, and the tail window math must hold for
// every small history length.
func TestImprovementTable(t *testing.T) {
	hist := func(vals ...float64) []Iteration {
		out := make([]Iteration, len(vals))
		for i, v := range vals {
			out[i] = Iteration{Index: i, Observed: []float64{v}}
		}
		return out
	}
	cases := []struct {
		name    string
		history []Iteration
		want    float64
	}{
		{"len0", hist(), 0},
		{"len1", hist(4), 0},                               // tail is the first observation again
		{"len1-zero-first", hist(0), 0},                    // guard, not 0/0
		{"len2", hist(4, 2), 0.5},                          // tail = last element
		{"len3", hist(4, 3, 2), 0.5},                       // tail index (3*3)/4 = 2
		{"len3-zero-first", hist(0, 5, 5), 0},              // guard fires before tail math
		{"len4", hist(4, 9, 9, 3), 0.25},                   // tail index 3
		{"len4-negative-first", hist(-4, 0, 0, -3), -0.25}, // |first| denominator
	}
	for _, tc := range cases {
		if got := Improvement(tc.history, 0); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: Improvement = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// batchOnlyModel hides EvaluateSearch from the controller so scoring
// falls back to the exhaustive batch path — the reference the
// incremental search is checked against.
type batchOnlyModel struct{ m *whatif.Model }

func (b *batchOnlyModel) Evaluate(cfg cluster.Config) ([]float64, error) { return b.m.Evaluate(cfg) }
func (b *batchOnlyModel) EvaluateBatch(cfgs []cluster.Config) ([][]float64, error) {
	return b.m.EvaluateBatch(cfgs)
}

// stripSearch clears the cache-temperature diagnostics so trajectories
// can be compared structurally.
func stripSearch(hist []Iteration) []Iteration {
	for i := range hist {
		hist[i].Search = nil
	}
	return hist
}

// TestIncrementalSearchMatchesExhaustive: with a prune-eligible strategy
// (RandomSearch — no prediction feedback), the warm-started, pruned
// search must walk exactly the trajectory exhaustive scoring walks, and
// the incumbent must warm-start from the cross-tick cache after the
// first iteration.
func TestIncrementalSearchMatchesExhaustive(t *testing.T) {
	const steps = 5
	run := func(exhaustive bool) ([]Iteration, cluster.Config, []*SearchStats) {
		cfg, initial := twoTenantSetup(t, 31)
		rs, err := pald.NewRandomSearch(cfg.Space.Dim(), 0.2, 77)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Strategy = rs
		if exhaustive {
			cfg.Model = &batchOnlyModel{m: cfg.Model.(*whatif.Model)}
		}
		c, err := NewController(cfg, initial)
		if err != nil {
			t.Fatal(err)
		}
		hist, err := c.Run(steps)
		if err != nil {
			t.Fatal(err)
		}
		stats := make([]*SearchStats, steps)
		for i := range stats {
			stats[i] = c.Search(i)
		}
		return hist, c.Current(), stats
	}
	exHist, exCfg, _ := run(true)
	incHist, incCfg, incStats := run(false)
	if !reflect.DeepEqual(stripSearch(exHist), stripSearch(incHist)) {
		t.Fatalf("trajectories diverge:\nexhaustive:  %+v\nincremental: %+v", exHist, incHist)
	}
	if !reflect.DeepEqual(exCfg, incCfg) {
		t.Fatalf("final configs diverge:\nexhaustive:  %+v\nincremental: %+v", exCfg, incCfg)
	}
	warm := 0
	for i, st := range incStats {
		if st == nil {
			t.Fatalf("iteration %d has no search stats", i)
		}
		if st.Candidates != st.FullyScored+st.WarmStarted+st.Pruned {
			t.Fatalf("iteration %d stats don't add up: %+v", i, st)
		}
		if st.DecisionNanos != 0 {
			t.Fatalf("iteration %d has nonzero decision latency without a clock", i)
		}
		warm += st.WarmStarted
	}
	if warm == 0 {
		t.Fatal("incumbent never warm-started from the cross-tick cache")
	}
}

// floodedSetup is the contended fixture the pruning proof is exercised
// on: a tiny cluster, one tenant flooding it with identical jobs, and a
// constrained throughput SLO. A candidate capping the tenant to one
// container has a throughput lower bound so far above the incumbent's
// regret that it is provably hopeless — exactly what the QS bounds are
// built to prove without simulating.
func floodedSetup(t *testing.T) (Config, cluster.Config) {
	t.Helper()
	const capacity = 8
	interval := 30 * time.Minute
	trace := &workload.Trace{Name: "flood", Horizon: interval}
	for i := 0; i < 40; i++ {
		job := workload.NewMapReduceJob(
			jobID("flood", i), "batch", 0,
			[]time.Duration{5 * time.Minute, 5 * time.Minute, 5 * time.Minute, 5 * time.Minute},
			nil,
		)
		trace.Jobs = append(trace.Jobs, job)
	}
	if err := trace.Validate(); err != nil {
		t.Fatal(err)
	}
	templates := []qs.Template{
		qs.Template{Queue: "batch", Metric: qs.Throughput}.WithTarget(-8),
	}
	model, err := whatif.FromTrace(templates, trace)
	if err != nil {
		t.Fatal(err)
	}
	model.Horizon = interval
	cfg := Config{
		Space:       cluster.DefaultSpace(capacity, []string{"batch"}),
		Templates:   templates,
		Model:       model,
		Environment: &ReplayEnvironment{Trace: trace},
		Interval:    interval,
		Candidates:  3,
	}
	initial := cluster.Config{TotalContainers: capacity, Tenants: map[string]cluster.TenantConfig{
		"batch": {Weight: 1},
	}}
	return cfg, initial
}

func jobID(prefix string, i int) string {
	return prefix + "-" + string(rune('a'+i/26)) + string(rune('a'+i%26))
}

// cornerStrategy proposes the origin of the normalized cube every time:
// it decodes to a one-container MaxShare cap, the most starved
// configuration the space admits. It implements Strategy but not
// PredictionObserver, so the controller is licensed to prune it.
type cornerStrategy struct{ dim int }

func (s *cornerStrategy) Name() string                           { return "corner" }
func (s *cornerStrategy) Observe(linalg.Vector, []float64) error { return nil }
func (s *cornerStrategy) Propose(_ linalg.Vector, _ []float64, n int) ([]linalg.Vector, error) {
	out := make([]linalg.Vector, n)
	for i := range out {
		out[i] = linalg.NewVector(s.dim)
	}
	return out, nil
}

// TestPruningFiresAndPreservesDecisions: on the flooded fixture the
// hopeless corner candidates must actually be pruned (the bound does
// real work), while the decision trajectory stays identical to
// exhaustive scoring.
func TestPruningFiresAndPreservesDecisions(t *testing.T) {
	const steps = 3
	run := func(exhaustive bool) ([]Iteration, cluster.Config, int) {
		cfg, initial := floodedSetup(t)
		cfg.Strategy = &cornerStrategy{dim: cfg.Space.Dim()}
		if exhaustive {
			cfg.Model = &batchOnlyModel{m: cfg.Model.(*whatif.Model)}
		}
		c, err := NewController(cfg, initial)
		if err != nil {
			t.Fatal(err)
		}
		hist, err := c.Run(steps)
		if err != nil {
			t.Fatal(err)
		}
		pruned := 0
		for i := 0; i < steps; i++ {
			pruned += c.Search(i).Pruned
		}
		return hist, c.Current(), pruned
	}
	exHist, exCfg, exPruned := run(true)
	incHist, incCfg, incPruned := run(false)
	if exPruned != 0 {
		t.Fatalf("exhaustive path pruned %d candidates", exPruned)
	}
	if incPruned == 0 {
		t.Fatal("fixture did not trigger pruning; the bound never fired")
	}
	if !reflect.DeepEqual(stripSearch(exHist), stripSearch(incHist)) {
		t.Fatalf("pruning changed the trajectory:\nexhaustive:  %+v\npruned:      %+v", exHist, incHist)
	}
	if !reflect.DeepEqual(exCfg, incCfg) {
		t.Fatalf("pruning changed the final config:\nexhaustive: %+v\npruned:     %+v", exCfg, incCfg)
	}
}

// TestDecisionLatencyUsesInjectedClock: DecisionNanos comes from
// Config.Now and only from it.
func TestDecisionLatencyUsesInjectedClock(t *testing.T) {
	cfg, initial := twoTenantSetup(t, 33)
	var fake int64
	cfg.Now = func() time.Time {
		fake += 1_000_000 // 1ms per reading
		return time.Unix(0, fake)
	}
	c, err := NewController(cfg, initial)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Step(); err != nil {
		t.Fatal(err)
	}
	st := c.Search(0)
	if st == nil || st.DecisionNanos != 1_000_000 {
		t.Fatalf("DecisionNanos = %+v, want exactly one fake-clock delta", st)
	}
	if c.Search(-1) != nil || c.Search(1) != nil {
		t.Fatal("out-of-range Search index returned stats")
	}
}

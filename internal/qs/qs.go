// Package qs implements Tempo's Quantitative SLO metrics (§5): loss
// functions over the task schedule whose minimization improves the
// corresponding SLO. It also provides the declarative QS templates tenants
// use to register SLOs (§5.2).
//
// Metrics are evaluated over an interval [From, To): following the paper,
// the job set Ji for tenant i is the jobs submitted AND completed inside
// the interval, and utilization integrates container allocation over the
// interval's length L.
//
// # Interval convention
//
// Every window is half-open: [From, To). A job belongs to the window's job
// set Ji iff From <= Submit < To AND Finish < To — a job finishing exactly
// at To is excluded, uniformly across the response-time, deadline, and
// throughput metrics and across both evaluation paths (the full-recompute
// oracle in this file and the incremental Accumulator in incremental.go).
// Allocation integrals clip task intervals to [From, To) the same way: a
// container occupied on [a, To) counts up to To, one occupied from To on
// counts nothing. Callers that want jobs finishing exactly at the horizon
// included therefore evaluate over [0, Horizon+1ns), as the control loop
// does. TestIntervalEdgeConvention locks this behaviour for both paths.
//
// Two evaluation paths compute the same metrics: Template.Eval / EvalAll
// scan every record per template (the reference oracle), while EvalStream /
// Accumulator consume the schedule's event stream once and answer window
// queries from per-metric indexes. Full-schedule windows are bit-identical
// across the two; arbitrary windows agree within float round-off.
package qs

import (
	"fmt"
	"math"
	"time"

	"tempo/internal/cluster"
	"tempo/internal/workload"
)

// Kind names a QS metric definition.
type Kind string

// The predefined QS metric kinds of §5.1.
const (
	// AvgResponseTime is QS_AJR (eq. 1): mean job response time, seconds.
	AvgResponseTime Kind = "avg_response_time"
	// DeadlineViolations is QS_DL (eq. 2): the fraction of deadline jobs
	// finishing later than deadline + slack·(job duration).
	DeadlineViolations Kind = "deadline_violations"
	// Utilization is QS_UTIL (eq. 3): negative fraction of cluster
	// capacity the tenant used over the interval (more usage = lower QS).
	Utilization Kind = "utilization"
	// Throughput is QS_THR (eq. 4): negative count of completed jobs.
	Throughput Kind = "throughput"
	// Fairness is QS_FAIR: deviation of the tenant's achieved share of
	// total usage from its desired share. The paper prints this metric as
	// −|ci + QS_UTIL|; minimizing that expression as written would reward
	// deviation, so we implement the evidently intended |ci − usage
	// share|, which is minimized at perfect long-term fairness.
	Fairness Kind = "fairness"
)

// Valid reports whether k names a known metric.
func (k Kind) Valid() bool {
	switch k {
	case AvgResponseTime, DeadlineViolations, Utilization, Throughput, Fairness:
		return true
	}
	return false
}

// Template declaratively specifies one SLO as in §5.2: a queue, a metric
// definition, metric parameters, and an optional priority weight.
type Template struct {
	// Queue is the tenant whose workload the SLO covers.
	Queue string `json:"queue"`
	// Metric selects the QS definition.
	Metric Kind `json:"metric"`
	// Slack is QS_DL's tolerance γ: a job violates its deadline only if it
	// finishes later than deadline + Slack·(response time).
	Slack float64 `json:"slack,omitempty"`
	// DesiredShare is QS_FAIR's target fraction ci of total usage.
	DesiredShare float64 `json:"desired_share,omitempty"`
	// EffectiveOnly makes QS_UTIL count only attempts that finished,
	// excluding preempted/failed work — the "effective utilization" of
	// Figure 1.
	EffectiveOnly bool `json:"effective_only,omitempty"`
	// TaskKind, when non-nil, restricts QS_UTIL to map or reduce
	// containers (the UTIL_MAP / UTIL_RED split of Figure 9).
	TaskKind *workload.TaskKind `json:"task_kind,omitempty"`
	// Priority multiplies the QS value (§5.2(d), §6.1); zero means 1.
	Priority float64 `json:"priority,omitempty"`
	// Target, when HasTarget, is the constraint bound r_i of problem
	// (SP1). SLOs without explicit targets are "best-effort": the control
	// loop uses the currently observed value as a ratcheting target.
	Target    float64 `json:"target,omitempty"`
	HasTarget bool    `json:"has_target,omitempty"`
}

// Name returns a compact human-readable identifier.
func (t Template) Name() string {
	suffix := ""
	if t.TaskKind != nil {
		suffix = "_" + t.TaskKind.String()
	}
	return fmt.Sprintf("%s/%s%s", t.Queue, t.Metric, suffix)
}

// Validate checks the template's parameters. An empty queue is allowed for
// Utilization and Throughput, where it means "cluster-wide" (Figure 9's
// UTIL_MAP / UTIL_RED are cluster-level SLOs); per-tenant metrics require a
// queue.
func (t Template) Validate() error {
	if t.Queue == "" && t.Metric != Utilization && t.Metric != Throughput {
		return fmt.Errorf("qs: template with empty queue")
	}
	if !t.Metric.Valid() {
		return fmt.Errorf("qs: unknown metric kind %q", t.Metric)
	}
	if t.Slack < 0 {
		return fmt.Errorf("qs: negative slack %g", t.Slack)
	}
	if t.Priority < 0 {
		return fmt.Errorf("qs: negative priority %g", t.Priority)
	}
	if t.Metric == Fairness && (t.DesiredShare < 0 || t.DesiredShare > 1) {
		return fmt.Errorf("qs: desired share %g outside [0,1]", t.DesiredShare)
	}
	return nil
}

// WithTarget returns a copy of the template with the constraint bound set.
func (t Template) WithTarget(r float64) Template {
	t.Target = r
	t.HasTarget = true
	return t
}

// Eval computes the QS value over [from, to) of the schedule.
func (t Template) Eval(s *cluster.Schedule, from, to time.Duration) float64 {
	priority := t.Priority
	if priority == 0 {
		priority = 1
	}
	var v float64
	switch t.Metric {
	case AvgResponseTime:
		v = avgResponse(s, t.Queue, from, to)
	case DeadlineViolations:
		v = deadlineViolations(s, t.Queue, t.Slack, from, to)
	case Utilization:
		v = -usedFraction(s, t.Queue, t.TaskKind, t.EffectiveOnly, from, to)
	case Throughput:
		v = -float64(countCompletedJobs(s, t.Queue, from, to))
	case Fairness:
		total := usedFraction(s, "", nil, false, from, to)
		mine := usedFraction(s, t.Queue, nil, false, from, to)
		if total <= 0 {
			v = 0
		} else {
			v = math.Abs(t.DesiredShare - mine/total)
		}
	default:
		v = math.NaN()
	}
	return priority * v
}

// EvalAll evaluates every template over the same interval, producing the
// QS vector f(x; w) the optimizer consumes. It rescans all records once
// per template — O(k·(jobs+tasks)) — and serves as the reference oracle
// for the incremental path (EvalStream), which production callers use.
func EvalAll(templates []Template, s *cluster.Schedule, from, to time.Duration) []float64 {
	out := make([]float64, len(templates))
	for i, t := range templates {
		out[i] = t.Eval(s, from, to)
	}
	return out
}

// inJobSet reports whether j belongs to tenant i's job set Ji for the
// interval: submitted and completed within [from, to).
func inJobSet(j *cluster.JobRecord, tenant string, from, to time.Duration) bool {
	if tenant != "" && j.Tenant != tenant {
		return false
	}
	return j.Completed && j.Submit >= from && j.Submit < to && j.Finish < to
}

// countCompletedJobs sizes tenant i's job set Ji without materializing it.
func countCompletedJobs(s *cluster.Schedule, tenant string, from, to time.Duration) int {
	n := 0
	for i := range s.Jobs {
		if inJobSet(&s.Jobs[i], tenant, from, to) {
			n++
		}
	}
	return n
}

// avgResponse implements eq. (1). The scan streams over the records in
// order — the same summation order the set-materializing formulation had —
// so results are bit-identical without building the job set.
func avgResponse(s *cluster.Schedule, tenant string, from, to time.Duration) float64 {
	n := 0
	var sum float64
	for i := range s.Jobs {
		j := &s.Jobs[i]
		if !inJobSet(j, tenant, from, to) {
			continue
		}
		n++
		sum += (j.Finish - j.Submit).Seconds()
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// deadlineViolations implements eq. (2) with slack γ. Jobs without
// deadlines are excluded from the denominator.
func deadlineViolations(s *cluster.Schedule, tenant string, slack float64, from, to time.Duration) float64 {
	n, violated := 0, 0
	for i := range s.Jobs {
		j := &s.Jobs[i]
		if !inJobSet(j, tenant, from, to) || j.Deadline <= 0 {
			continue
		}
		n++
		dur := j.Finish - j.Submit
		limit := j.Deadline + time.Duration(slack*float64(dur))
		if j.Finish > limit {
			violated++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(violated) / float64(n)
}

// usedFraction implements eq. (3) without the sign: the fraction of the
// interval's total container capacity allocated to the tenant ("" = all).
func usedFraction(s *cluster.Schedule, tenant string, kind *workload.TaskKind, effectiveOnly bool, from, to time.Duration) float64 {
	l := to - from
	if l <= 0 || s.Capacity <= 0 {
		return 0
	}
	var used time.Duration
	for i := range s.Tasks {
		task := &s.Tasks[i]
		if tenant != "" && task.Tenant != tenant {
			continue
		}
		if kind != nil && task.Kind != *kind {
			continue
		}
		if effectiveOnly && task.Outcome != cluster.TaskFinished {
			continue
		}
		start, end := task.Start, task.End
		if start < from {
			start = from
		}
		if end > to {
			end = to
		}
		if end > start {
			used += end - start
		}
	}
	return float64(used) / (float64(l) * float64(s.Capacity))
}

// Dominates reports whether QS vector a Pareto-dominates b: a is no worse
// everywhere and strictly better somewhere. This is the comparison Tempo's
// control loop uses for its revert guard (§4).
func Dominates(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	strictly := false
	for i := range a {
		if a[i] > b[i]+1e-12 {
			return false
		}
		if a[i] < b[i]-1e-12 {
			strictly = true
		}
	}
	return strictly
}

// MaxRegret returns the largest constraint violation max_i (f_i − r_i) over
// templates that carry targets, or 0 if none do. PALD's max-min fairness
// over SLO satisfactions minimizes exactly this quantity when the problem
// is infeasible.
func MaxRegret(templates []Template, values []float64) float64 {
	regret := 0.0
	for i, t := range templates {
		if !t.HasTarget {
			continue
		}
		if r := values[i] - t.Target; r > regret {
			regret = r
		}
	}
	return regret
}

package query

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"time"

	"tempo/internal/cluster"
	"tempo/internal/qs"
)

// row is the tuple flowing through a compiled pipeline: a session-time
// anchor plus the string and numeric columns of the stage's schema.
type row struct {
	t   time.Duration
	str []string
	num []float64
}

// ResultRow is one output row, in the JSON shape the service returns.
// Raw (non-aggregated) rows carry Strings/Values keyed by column name and
// a window spanning their tick; aggregate and slos rows carry Group (the
// group_by key, or slo identity) and Values keyed by output column, over
// the window they summarize. WindowToSeconds is -1 for the unbounded
// whole-session window of an un-windowed aggregate.
type ResultRow struct {
	// Tick is the control interval that produced (or last updated) the row.
	Tick int `json:"tick"`
	// TimeSeconds is the row's session-time anchor: the source row's time
	// for raw rows, the window start for aggregate rows.
	TimeSeconds       float64 `json:"time_seconds"`
	WindowFromSeconds float64 `json:"window_from_seconds"`
	WindowToSeconds   float64 `json:"window_to_seconds"`

	Group   map[string]string  `json:"group,omitempty"`
	Strings map[string]string  `json:"strings,omitempty"`
	Values  map[string]float64 `json:"values,omitempty"`
}

// Result is a one-shot query's full answer (or a subscription's current
// snapshot): every row, deterministically ordered — raw rows in stream
// order, aggregate rows by (window, group key).
type Result struct {
	// Ticks counts the control intervals pushed so far.
	Ticks int         `json:"ticks"`
	Rows  []ResultRow `json:"rows"`
	// Truncated reports that a limit operator dropped rows (raw mode) or
	// stopped admitting new groups (aggregate mode).
	Truncated bool `json:"truncated,omitempty"`
}

// Runner modes.
const (
	modeRaw = iota // no aggregate: rows stream through
	modeAgg        // generic aggregate: grouped incremental state
	modeSLO        // slos aggregate: per-tick qs accumulator evaluation
)

// Window modes.
const (
	winNone = iota // one bucket spanning the whole plan window
	winTick        // one bucket per control interval
	winDur         // fixed-duration buckets
)

// aggExpr is one compiled aggregate expression.
type aggExpr struct {
	fn   string
	q    float64 // quantile rank for pNN fns
	kind fieldKind
	col  int
	name string
}

// cell is one live (window, group) aggregation state.
type cell struct {
	bucket     int64
	bucketFrom time.Duration
	bucketTo   time.Duration // -1 = unbounded
	groupVals  []string
	tick       int // last tick that touched the cell
	touched    int // last tick appended to the runner's touched list; -1 initially
	aggs       []aggState
}

// aggState is one expression's running state in one cell. Quantile
// expressions retain their values (exact quantiles need them); everything
// else folds in arrival order, which is deterministic because the event
// stream's order is canonical.
type aggState struct {
	count    int
	sum      float64
	min, max float64
	vals     []float64
}

// Runner is a compiled plan plus its incremental evaluation state. Feed
// it completed control intervals in order with PushTick — each call
// returns only the rows that tick produced or updated (the SSE delta) —
// and read the full deterministic answer with Result at any point. A
// client that applies every delta last-write-wins, keyed by
// (window, group) for aggregate rows and by identity for raw rows, ends
// with exactly Result's rows; TestStreamMatchesOneShot locks this.
// A Runner is not safe for concurrent use; the service gives each
// subscription its own.
type Runner struct {
	plan     Plan
	interval time.Duration

	from, to       time.Duration
	hasFrom, hasTo bool

	mode   int
	stages []func(*row) bool
	out    *schema // schema flowing out of the pipeline

	// slos mode
	slos     []qs.Template
	sloNames []string

	// aggregate mode
	aggs       []aggExpr
	groupIdx   []int
	groupNames []string
	winMode    int
	winDur     time.Duration
	cells      map[string]*cell
	cellOrder  []*cell

	// MaxGroups bounds the distinct (window, group) cells an aggregate
	// materializes; PushTick fails once exceeded. Settable before the
	// first push; defaults to DefaultMaxGroups.
	MaxGroups int

	limit     int // 0 = none
	emitted   int // raw rows emitted so far
	done      bool
	truncated bool

	ticks   int
	rawRows []ResultRow // raw + slos modes accumulate emitted rows here

	evbuf cluster.EventBuf
}

// Compile validates the plan and builds a runner for a session with the
// given control interval.
func Compile(p *Plan, interval time.Duration) (*Runner, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if interval <= 0 {
		return nil, fmt.Errorf("query: control interval must be positive, got %v", interval)
	}
	r := &Runner{
		plan:      *p,
		interval:  interval,
		out:       sourceSchemas[p.Source],
		MaxGroups: DefaultMaxGroups,
		cells:     map[string]*cell{},
	}
	r.from, r.hasFrom, _ = parseBound(p.From)
	r.to, r.hasTo, _ = parseBound(p.To)

	for i := range p.Ops {
		op := &p.Ops[i]
		switch op.Op {
		case "filter":
			r.stages = append(r.stages, compileFilter(op, r.out))
		case "map":
			st, next := compileMap(op, r.out)
			r.stages = append(r.stages, st)
			r.out = next
		case "group_by":
			r.groupNames = append([]string(nil), op.By...)
			for _, f := range op.By {
				_, idx, _ := r.out.lookup(f)
				r.groupIdx = append(r.groupIdx, idx)
			}
		case "window":
			if op.Size == "tick" {
				r.winMode = winTick
			} else {
				r.winMode = winDur
				r.winDur, _ = time.ParseDuration(op.Size)
			}
		case "aggregate":
			if len(op.SLOs) > 0 {
				r.mode = modeSLO
				r.slos = append([]qs.Template(nil), op.SLOs...)
				for _, t := range r.slos {
					r.sloNames = append(r.sloNames, t.Name())
				}
			} else {
				r.mode = modeAgg
				for j := range op.Aggs {
					a := &op.Aggs[j]
					e := aggExpr{fn: a.Fn, q: aggFns[a.Fn], name: a.outName()}
					if a.Field != "" {
						e.kind, e.col, _ = r.out.lookup(a.Field)
					}
					r.aggs = append(r.aggs, e)
				}
			}
		case "limit":
			r.limit = op.N
		}
	}
	return r, nil
}

// compileFilter builds one filter stage against the stage schema sch.
func compileFilter(op *OpSpec, sch *schema) func(*row) bool {
	kind, idx, _ := sch.lookup(op.Field)
	if kind == kindString {
		if op.Eq != nil {
			want := *op.Eq
			return func(r *row) bool { return r.str[idx] == want }
		}
		want := append([]string(nil), op.In...)
		return func(r *row) bool {
			for _, w := range want {
				if r.str[idx] == w {
					return true
				}
			}
			return false
		}
	}
	val := func(r *row) float64 {
		if kind == kindTime {
			return r.t.Seconds()
		}
		return r.num[idx]
	}
	if op.Eq != nil {
		want, _ := parseOperand(*op.Eq)
		return func(r *row) bool { return val(r) == want }
	}
	// Range comparators conjoin.
	type bound struct {
		v  float64
		ok func(have, want float64) bool
	}
	var bounds []bound
	add := func(c *string, ok func(have, want float64) bool) {
		if c == nil {
			return
		}
		v, _ := parseOperand(*c)
		bounds = append(bounds, bound{v, ok})
	}
	add(op.Ge, func(h, w float64) bool { return h >= w })
	add(op.Gt, func(h, w float64) bool { return h > w })
	add(op.Le, func(h, w float64) bool { return h <= w })
	add(op.Lt, func(h, w float64) bool { return h < w })
	return func(r *row) bool {
		h := val(r)
		for _, b := range bounds {
			if !b.ok(h, b.v) {
				return false
			}
		}
		return true
	}
}

// compileMap builds a projection stage and the schema flowing out of it.
func compileMap(op *OpSpec, sch *schema) (func(*row) bool, *schema) {
	next := &schema{}
	var strIdx, numIdx []int
	for _, f := range op.Fields {
		kind, idx, _ := sch.lookup(f)
		switch kind {
		case kindString:
			next.str = append(next.str, f)
			strIdx = append(strIdx, idx)
		case kindNumber:
			next.num = append(next.num, f)
			numIdx = append(numIdx, idx)
		}
	}
	return func(r *row) bool {
		str := make([]string, len(strIdx))
		for i, idx := range strIdx {
			str[i] = r.str[idx]
		}
		num := make([]float64, len(numIdx))
		for i, idx := range numIdx {
			num[i] = r.num[idx]
		}
		r.str, r.num = str, num
		return true
	}, next
}

// PushTick feeds one completed control interval's observed schedule and
// returns the rows that interval produced or updated. Ticks must arrive
// strictly in order starting at 0; sched is the independent emulation of
// session window [tick·interval, (tick+1)·interval) in local time.
func (r *Runner) PushTick(tick int, sched *cluster.Schedule) ([]ResultRow, error) {
	if tick != r.ticks {
		return nil, fmt.Errorf("query: ticks must be pushed in order: got %d, want %d", tick, r.ticks)
	}
	r.ticks++
	if sched == nil {
		return nil, fmt.Errorf("query: tick %d has no observed schedule", tick)
	}
	if r.done {
		return nil, nil
	}
	lo := time.Duration(tick) * r.interval
	hi := lo + r.interval
	// A tick wholly outside the plan window contributes nothing; for a
	// bounded "to" every later tick is also outside, so the runner is done.
	if r.hasTo && lo >= r.to {
		r.done = true
		return nil, nil
	}
	if r.hasFrom && hi <= r.from {
		return nil, nil
	}
	if r.mode == modeSLO {
		return r.pushSLO(tick, lo, sched), nil
	}
	return r.pushRows(tick, lo, sched)
}

// pushSLO evaluates the slos aggregate for one tick: the template vector
// over the tick's slice of the plan window, through the same accumulator
// and window-clipping convention Session.QS uses — which is what makes a
// whole-window slos plan bit-identical to qs.EvalStream on each tick.
func (r *Runner) pushSLO(tick int, lo time.Duration, sched *cluster.Schedule) []ResultRow {
	localFrom := time.Duration(0)
	if r.hasFrom && r.from > lo {
		localFrom = r.from - lo
	}
	localTo := r.interval
	if r.hasTo && r.to < lo+r.interval {
		localTo = r.to - lo
	}
	evalTo := localTo
	if localTo >= r.interval {
		// Full coverage means "this whole observation": extend past the
		// horizon so records ending exactly there count, as the control
		// loop's own evaluation does.
		evalTo = sched.Horizon + time.Nanosecond
	}
	a := qs.NewAccumulator(r.slos, sched.Capacity)
	for _, ev := range sched.AppendEvents(&r.evbuf) {
		a.Observe(ev)
	}
	vals := a.Values(localFrom, evalTo)
	wf := (lo + localFrom).Seconds()
	wt := (lo + localTo).Seconds()
	out := make([]ResultRow, len(vals))
	for i, v := range vals {
		out[i] = ResultRow{
			Tick:              tick,
			TimeSeconds:       wf,
			WindowFromSeconds: wf,
			WindowToSeconds:   wt,
			Group: map[string]string{
				"slo":       r.sloNames[i],
				"slo_index": strconv.Itoa(i),
			},
			Values: map[string]float64{"value": v},
		}
	}
	r.rawRows = append(r.rawRows, out...)
	return out
}

// pushRows streams one tick's source rows through the pipeline into
// either raw emission or aggregate cells.
func (r *Runner) pushRows(tick int, lo time.Duration, sched *cluster.Schedule) ([]ResultRow, error) {
	var out []ResultRow
	var touched []*cell
	var pushErr error
	sink := func(rw *row) bool {
		if r.mode == modeRaw {
			if r.limit > 0 && r.emitted >= r.limit {
				r.done, r.truncated = true, true
				return false
			}
			rr := r.rawResultRow(tick, lo, rw)
			out = append(out, rr)
			r.rawRows = append(r.rawRows, rr)
			r.emitted++
			return true
		}
		c, err := r.cellFor(tick, rw)
		if err != nil {
			pushErr = err
			return false
		}
		if c == nil {
			return true // over the limit's group cap; drop
		}
		r.fold(c, rw)
		c.tick = tick
		if c.touched != tick {
			c.touched = tick
			touched = append(touched, c)
		}
		return true
	}
	r.scan(tick, lo, sched, sink)
	if pushErr != nil {
		return nil, pushErr
	}
	if r.mode == modeRaw {
		return out, nil
	}
	sortCells(touched)
	for _, c := range touched {
		out = append(out, r.cellRow(c))
	}
	return out, nil
}

// scan generates the tick's source relation and pipes each row through
// the plan window and compiled stages into sink; sink returning false
// stops the scan.
func (r *Runner) scan(tick int, lo time.Duration, sched *cluster.Schedule, sink func(*row) bool) {
	stop := false
	pipe := func(rw *row) bool {
		if stop {
			return false
		}
		if (r.hasFrom && rw.t < r.from) || (r.hasTo && rw.t >= r.to) {
			return true
		}
		for _, st := range r.stages {
			if !st(rw) {
				return true
			}
		}
		if !sink(rw) {
			stop = true
			return false
		}
		return true
	}
	switch r.plan.Source {
	case "events":
		evs := sched.AppendEvents(&r.evbuf)
		for i := range evs {
			if !pipe(eventRow(lo, &evs[i])) {
				return
			}
		}
	case "jobs":
		a := qs.NewAccumulator(nil, sched.Capacity)
		for _, ev := range sched.AppendEvents(&r.evbuf) {
			a.Observe(ev)
		}
		a.EachJob(func(j qs.JobView) {
			pipe(jobRow(lo, j))
		})
	case "tasks":
		a := qs.NewAccumulator(nil, sched.Capacity)
		for _, ev := range sched.AppendEvents(&r.evbuf) {
			a.Observe(ev)
		}
		a.EachTask(func(t qs.TaskView) {
			pipe(taskRow(lo, t))
		})
	}
}

// eventRow maps one schedule event to the events relation's row shape.
// String columns follow sourceSchemas["events"].str order, numeric ones
// .num order; columns a kind does not carry are ""/0.
func eventRow(lo time.Duration, ev *cluster.Event) *row {
	taskKind, outcome := "", ""
	switch ev.Kind {
	case cluster.EventTaskStart:
		taskKind = ev.TaskKind.String()
	case cluster.EventTaskEnd:
		taskKind = ev.TaskKind.String()
		outcome = ev.Outcome.String()
	}
	var completed, killed, deadline float64
	switch ev.Kind {
	case cluster.EventJobFinish:
		completed, killed = b2f(ev.Completed), b2f(ev.Killed)
	case cluster.EventJobSubmit:
		deadline = ev.Deadline.Seconds()
	}
	return &row{
		t:   lo + ev.Time,
		str: []string{ev.Kind.String(), ev.Tenant, ev.JobID, taskKind, outcome},
		num: []float64{float64(ev.Delta), float64(ev.Attempt), deadline, completed, killed},
	}
}

// jobRow maps one paired job record to the jobs relation's row shape.
func jobRow(lo time.Duration, j qs.JobView) *row {
	return &row{
		t:   lo + j.Submit,
		str: []string{j.Tenant},
		num: []float64{
			(lo + j.Submit).Seconds(),
			(lo + j.Finish).Seconds(),
			(j.Finish - j.Submit).Seconds(),
			j.Deadline.Seconds(),
			b2f(j.Completed),
		},
	}
}

// taskRow maps one paired task attempt to the tasks relation's row shape.
func taskRow(lo time.Duration, t qs.TaskView) *row {
	return &row{
		t:   lo + t.Start,
		str: []string{t.Tenant, t.Kind.String(), t.Outcome.String()},
		num: []float64{
			(lo + t.Start).Seconds(),
			(lo + t.End).Seconds(),
			(t.End - t.Start).Seconds(),
		},
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// rawResultRow converts a pipeline row to its output shape under the
// pipeline's final schema.
func (r *Runner) rawResultRow(tick int, lo time.Duration, rw *row) ResultRow {
	rr := ResultRow{
		Tick:              tick,
		TimeSeconds:       rw.t.Seconds(),
		WindowFromSeconds: lo.Seconds(),
		WindowToSeconds:   (lo + r.interval).Seconds(),
	}
	if len(r.out.str) > 0 {
		rr.Strings = make(map[string]string, len(r.out.str))
		for i, n := range r.out.str {
			rr.Strings[n] = rw.str[i]
		}
	}
	if len(r.out.num) > 0 {
		rr.Values = make(map[string]float64, len(r.out.num))
		for i, n := range r.out.num {
			rr.Values[n] = rw.num[i]
		}
	}
	return rr
}

// cellFor locates (or admits) the aggregation cell for a row. A nil cell
// with nil error means the row's group fell past the limit's group cap.
func (r *Runner) cellFor(tick int, rw *row) (*cell, error) {
	var bucket int64
	var bFrom, bTo time.Duration
	switch r.winMode {
	case winNone:
		bFrom = 0
		if r.hasFrom {
			bFrom = r.from
		}
		bTo = -1
		if r.hasTo {
			bTo = r.to
		}
	case winTick:
		bucket = int64(tick)
		bFrom = time.Duration(tick) * r.interval
		bTo = bFrom + r.interval
	case winDur:
		bucket = int64(rw.t / r.winDur)
		bFrom = time.Duration(bucket) * r.winDur
		bTo = bFrom + r.winDur
	}
	key := strconv.FormatInt(bucket, 10)
	for _, gi := range r.groupIdx {
		key += "\x1f" + rw.str[gi]
	}
	if c, ok := r.cells[key]; ok {
		return c, nil
	}
	if r.limit > 0 && len(r.cellOrder) >= r.limit {
		// limit after aggregate caps distinct groups, first-seen wins; the
		// event stream's canonical order makes "first-seen" deterministic.
		r.truncated = true
		return nil, nil
	}
	if len(r.cellOrder) >= r.MaxGroups {
		return nil, fmt.Errorf("query: result exceeds %d distinct (window, group) cells; narrow the plan or raise the bound", r.MaxGroups)
	}
	groupVals := make([]string, len(r.groupIdx))
	for i, gi := range r.groupIdx {
		groupVals[i] = rw.str[gi]
	}
	c := &cell{
		bucket:     bucket,
		bucketFrom: bFrom,
		bucketTo:   bTo,
		groupVals:  groupVals,
		touched:    -1,
		aggs:       make([]aggState, len(r.aggs)),
	}
	r.cells[key] = c
	r.cellOrder = append(r.cellOrder, c)
	return c, nil
}

// fold updates a cell's aggregate states with one row.
func (r *Runner) fold(c *cell, rw *row) {
	for i := range r.aggs {
		e := &r.aggs[i]
		st := &c.aggs[i]
		var v float64
		if e.fn != "count" {
			if e.kind == kindTime {
				v = rw.t.Seconds()
			} else {
				v = rw.num[e.col]
			}
		}
		if st.count == 0 {
			st.min, st.max = v, v
		} else {
			if v < st.min {
				st.min = v
			}
			if v > st.max {
				st.max = v
			}
		}
		st.count++
		st.sum += v
		if isQuantile(e.fn) {
			st.vals = append(st.vals, v)
		}
	}
}

// cellRow renders a cell's current state as an output row.
func (r *Runner) cellRow(c *cell) ResultRow {
	rr := ResultRow{
		Tick:              c.tick,
		TimeSeconds:       c.bucketFrom.Seconds(),
		WindowFromSeconds: c.bucketFrom.Seconds(),
		WindowToSeconds:   c.bucketTo.Seconds(),
		Values:            make(map[string]float64, len(r.aggs)),
	}
	if c.bucketTo < 0 {
		rr.WindowToSeconds = -1
	}
	if len(r.groupNames) > 0 {
		rr.Group = make(map[string]string, len(r.groupNames))
		for i, n := range r.groupNames {
			rr.Group[n] = c.groupVals[i]
		}
	}
	for i := range r.aggs {
		e := &r.aggs[i]
		st := &c.aggs[i]
		rr.Values[e.name] = evalAgg(e, st)
	}
	return rr
}

// evalAgg computes one expression's current value.
func evalAgg(e *aggExpr, st *aggState) float64 {
	switch e.fn {
	case "count":
		return float64(st.count)
	case "sum":
		return st.sum
	case "avg":
		return st.sum / float64(st.count)
	case "min":
		return st.min
	case "max":
		return st.max
	}
	// Exact nearest-rank quantile over the retained values.
	vals := append([]float64(nil), st.vals...)
	sort.Float64s(vals)
	idx := int(math.Ceil(float64(len(vals))*e.q)) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(vals) {
		idx = len(vals) - 1
	}
	return vals[idx]
}

// sortCells orders cells by (window start, bucket id, group key) — the
// canonical output order.
func sortCells(cs []*cell) {
	sort.Slice(cs, func(i, j int) bool {
		a, b := cs[i], cs[j]
		if a.bucketFrom != b.bucketFrom {
			return a.bucketFrom < b.bucketFrom
		}
		if a.bucket != b.bucket {
			return a.bucket < b.bucket
		}
		for k := range a.groupVals {
			if k >= len(b.groupVals) {
				break
			}
			if a.groupVals[k] != b.groupVals[k] {
				return a.groupVals[k] < b.groupVals[k]
			}
		}
		return false
	})
}

// Result snapshots the query's full answer over everything pushed so far.
func (r *Runner) Result() *Result {
	res := &Result{Ticks: r.ticks, Truncated: r.truncated}
	if r.mode == modeAgg {
		cells := append([]*cell(nil), r.cellOrder...)
		sortCells(cells)
		res.Rows = make([]ResultRow, 0, len(cells))
		for _, c := range cells {
			res.Rows = append(res.Rows, r.cellRow(c))
		}
		return res
	}
	res.Rows = append([]ResultRow(nil), r.rawRows...)
	return res
}

package qs

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"tempo/internal/cluster"
	"tempo/internal/workload"
)

// fuzzSchedule synthesizes a structurally valid task schedule from a seed:
// jobs with random submit/finish times, optional deadlines, and task
// attempts with every outcome kind. It respects the Schedule invariants the
// emulator guarantees (End >= Start, Finish >= Submit for completed jobs)
// without going through a full simulation, so the fuzzer can reach corners
// (empty tenants, all-violated deadlines, zero-length windows) cheaply.
func fuzzSchedule(seed int64, capacity, n int) *cluster.Schedule {
	rng := rand.New(rand.NewSource(seed))
	horizon := time.Hour
	s := &cluster.Schedule{Capacity: capacity, Horizon: horizon}
	tenants := []string{"a", "b", "c"}
	outcomes := []cluster.TaskOutcome{
		cluster.TaskFinished, cluster.TaskPreempted, cluster.TaskFailed,
		cluster.TaskKilled, cluster.TaskTruncated,
	}
	for i := 0; i < n; i++ {
		tenant := tenants[rng.Intn(len(tenants))]
		submit := time.Duration(rng.Int63n(int64(horizon)))
		dur := time.Duration(rng.Int63n(int64(20 * time.Minute)))
		completed := rng.Intn(4) > 0
		job := cluster.JobRecord{
			ID:        fmt.Sprintf("%s-%03d", tenant, i),
			Tenant:    tenant,
			Submit:    submit,
			Finish:    submit + dur,
			Completed: completed,
		}
		if rng.Intn(2) == 0 {
			job.Deadline = submit + time.Duration(rng.Int63n(int64(30*time.Minute)))
		}
		s.Jobs = append(s.Jobs, job)
		for k := 0; k < 1+rng.Intn(3); k++ {
			start := submit + time.Duration(rng.Int63n(int64(10*time.Minute)))
			s.Tasks = append(s.Tasks, cluster.TaskRecord{
				JobID:   job.ID,
				Tenant:  tenant,
				Kind:    workload.TaskKind(rng.Intn(2)),
				Attempt: k + 1,
				Start:   start,
				End:     start + time.Duration(rng.Int63n(int64(10*time.Minute))),
				Outcome: outcomes[rng.Intn(len(outcomes))],
			})
		}
	}
	return s
}

// FuzzQS locks the QS-vector invariants: every predefined metric stays in
// its documented range on arbitrary schedules, EvalAll is shape- and
// order-stable, Pareto dominance is irreflexive and asymmetric, and
// MaxRegret is non-negative.
func FuzzQS(f *testing.F) {
	f.Add(int64(1), byte(4), byte(10), 0.25)
	f.Add(int64(42), byte(1), byte(0), 0.0)
	f.Add(int64(-7), byte(255), byte(40), 1.5)
	f.Add(int64(977), byte(16), byte(3), 0.5)
	f.Fuzz(func(t *testing.T, seed int64, capacity, n byte, slack float64) {
		if slack < 0 || math.IsNaN(slack) || math.IsInf(slack, 0) {
			slack = 0
		}
		cap := int(capacity)
		if cap == 0 {
			cap = 1
		}
		s := fuzzSchedule(seed, cap, int(n))
		mapKind := workload.Map
		templates := []Template{
			{Queue: "a", Metric: AvgResponseTime},
			{Queue: "a", Metric: DeadlineViolations, Slack: slack},
			{Queue: "b", Metric: Utilization},
			{Metric: Utilization, TaskKind: &mapKind, EffectiveOnly: true},
			{Queue: "c", Metric: Throughput},
			{Queue: "b", Metric: Fairness, DesiredShare: 0.5},
		}
		for _, tpl := range templates {
			if err := tpl.Validate(); err != nil {
				t.Fatalf("template %s invalid: %v", tpl.Name(), err)
			}
		}
		end := s.Horizon + time.Nanosecond
		vec := EvalAll(templates, s, 0, end)
		if len(vec) != len(templates) {
			t.Fatalf("EvalAll returned %d values for %d templates", len(vec), len(templates))
		}
		for i, v := range vec {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("objective %s = %v", templates[i].Name(), v)
			}
		}
		if vec[0] < 0 {
			t.Fatalf("AJR = %v, want >= 0", vec[0])
		}
		if vec[1] < 0 || vec[1] > 1 {
			t.Fatalf("deadline violations = %v, want in [0,1]", vec[1])
		}
		if vec[2] > 0 || vec[3] > 0 {
			t.Fatalf("utilization positive: %v / %v", vec[2], vec[3])
		}
		if vec[4] > 0 {
			t.Fatalf("throughput = %v, want <= 0", vec[4])
		}
		if vec[5] < 0 || vec[5] > 1 {
			t.Fatalf("fairness deviation = %v, want in [0,1]", vec[5])
		}
		// EvalAll must agree with per-template Eval (order stability).
		for i, tpl := range templates {
			if got := tpl.Eval(s, 0, end); got != vec[i] {
				t.Fatalf("EvalAll[%d] = %v but Eval = %v", i, vec[i], got)
			}
		}
		// Dominance: irreflexive, and asymmetric against the half-window
		// vector.
		if Dominates(vec, vec) {
			t.Fatal("vector dominates itself")
		}
		half := EvalAll(templates, s, 0, s.Horizon/2)
		if Dominates(vec, half) && Dominates(half, vec) {
			t.Fatal("dominance is not asymmetric")
		}
		// MaxRegret over targeted templates is never negative.
		targeted := make([]Template, len(templates))
		for i, tpl := range templates {
			targeted[i] = tpl.WithTarget(vec[i] - 1 + 2*float64(i%2))
		}
		if r := MaxRegret(targeted, vec); r < 0 {
			t.Fatalf("MaxRegret = %v, want >= 0", r)
		}
		if r := MaxRegret(templates, vec); r != 0 {
			t.Fatalf("MaxRegret without targets = %v, want 0", r)
		}
	})
}

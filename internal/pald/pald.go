// Package pald implements PALD (PAreto Local Descent, §6 of the Tempo
// paper): a multi-objective optimization algorithm for noisy, expensive QS
// functions subject to per-SLO constraints E[f_i(x)] <= r_i.
//
// The algorithm solves the proxy problem (SP2)
//
//	minimize  cᵀ[f(x) − ρ·max(f(x), r)]
//
// whose every solution is weakly Pareto-optimal for the original problem
// (Theorem 1, reproduced in TestTheorem1ProxyMonotonicity). Per iteration:
//
//  1. QS gradients are estimated with LOESS over the history of observed
//     (configuration, QS) samples — robust to measurement noise.
//  2. The weight vector c is chosen by a linear program that maximizes the
//     worst violated constraint's improvement (max-min fairness over SLO
//     regrets).
//  3. ρ* is derived from the Gram matrix of the gradients so the step never
//     increases a violated QS function.
//  4. A stochastic-gradient step is taken, projected onto the normalized
//     configuration cube and a trust region of radius MaxStep (the
//     "maximum distance to the currently used RM configuration" knob that
//     bounds production risk).
package pald

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"tempo/internal/linalg"
	"tempo/internal/loess"
	"tempo/internal/lp"
)

// Target is the constraint attached to one objective.
type Target struct {
	// R is the bound r_i of E[f_i(x)] <= r_i.
	R float64
	// Constrained marks whether the objective carries a bound. Objectives
	// without bounds are "best-effort": they join the descent direction
	// but never the violated set.
	Constrained bool
}

// Options tune the optimizer.
type Options struct {
	// StepSize is the SGD step α. Default 0.3.
	StepSize float64
	// MaxStep is the trust-region radius in the normalized configuration
	// space: no proposal moves farther than this from the current
	// configuration. Default 0.15.
	MaxStep float64
	// Span is the LOESS neighbourhood fraction. Default 0.75.
	Span float64
	// Epsilon is the LP's z-cap ε (any positive constant). Default 1.
	Epsilon float64
	// History caps the number of retained samples; older samples are
	// discarded so the optimizer tracks drifting workloads. Default 256.
	History int
	// Seed drives exploration randomness.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.StepSize <= 0 {
		o.StepSize = 0.3
	}
	if o.MaxStep <= 0 {
		o.MaxStep = 0.15
	}
	if o.Span <= 0 {
		o.Span = 0.75
	}
	if o.Epsilon <= 0 {
		o.Epsilon = 1
	}
	if o.History <= 0 {
		o.History = 256
	}
	return o
}

// Optimizer is the PALD state: an observation history plus tuning knobs.
type Optimizer struct {
	dim     int
	targets []Target
	opts    Options
	rng     *rand.Rand
	// counter is rng's underlying source: a draw-counting wrapper around
	// the seeded math/rand source, which is what makes the RNG position
	// serializable (see State/Restore in state.go).
	counter *countingSource

	xs []linalg.Vector // observed configurations
	fs []linalg.Vector // observed QS vectors (same indexing)
}

// New creates a PALD optimizer over a dim-dimensional normalized
// configuration space with one Target per objective.
func New(dim int, targets []Target, opts Options) (*Optimizer, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("pald: non-positive dimension %d", dim)
	}
	if len(targets) == 0 {
		return nil, errors.New("pald: no objectives")
	}
	o := opts.withDefaults()
	counter := newCountingSource(o.Seed)
	return &Optimizer{
		dim:     dim,
		targets: targets,
		opts:    o,
		rng:     rand.New(counter),
		counter: counter,
	}, nil
}

// Dim returns the configuration-space dimensionality.
func (p *Optimizer) Dim() int { return p.dim }

// SetTargets replaces the constraint bounds; the control loop uses this to
// ratchet best-effort targets to the currently achieved values.
func (p *Optimizer) SetTargets(targets []Target) error {
	if len(targets) != len(p.targets) {
		return fmt.Errorf("pald: target count %d != objective count %d", len(targets), len(p.targets))
	}
	p.targets = targets
	return nil
}

// Observe records one (configuration, QS vector) measurement.
func (p *Optimizer) Observe(x linalg.Vector, f []float64) error {
	if len(x) != p.dim {
		return fmt.Errorf("pald: observation dim %d != %d", len(x), p.dim)
	}
	if len(f) != len(p.targets) {
		return fmt.Errorf("pald: QS vector length %d != objective count %d", len(f), len(p.targets))
	}
	for _, v := range f {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("pald: non-finite QS value %v", v)
		}
	}
	p.xs = append(p.xs, x.Clone())
	p.fs = append(p.fs, linalg.Vector(f).Clone())
	if len(p.xs) > p.opts.History {
		drop := len(p.xs) - p.opts.History
		// Compact in place rather than reslicing forward: a forward
		// reslice keeps dropped observations reachable through the backing
		// array until the next growth reallocation, so a long-running
		// session carries dead vectors and the backing array creeps. The
		// copy preserves index order — LOESS consumes the history in
		// order, so fits stay bit-identical — and once the window is full
		// the backing array never grows again.
		n := len(p.xs) - drop
		copy(p.xs, p.xs[drop:])
		copy(p.fs, p.fs[drop:])
		for i := n; i < len(p.xs); i++ {
			p.xs[i] = nil
			p.fs[i] = nil
		}
		p.xs = p.xs[:n]
		p.fs = p.fs[:n]
	}
	return nil
}

// SampleCount returns the number of retained observations.
func (p *Optimizer) SampleCount() int { return len(p.xs) }

// minSamples is how many observations the gradient estimate needs before
// PALD descends; with fewer it explores randomly inside the trust region.
func (p *Optimizer) minSamples() int { return p.dim + 2 }

// Step computes the next configuration from x given its averaged
// measurement f. During warm-up (too few samples) it returns a random
// exploration point within the trust region.
func (p *Optimizer) Step(x linalg.Vector, f []float64) (linalg.Vector, error) {
	if len(x) != p.dim {
		return nil, fmt.Errorf("pald: step dim %d != %d", len(x), p.dim)
	}
	if len(p.xs) < p.minSamples() {
		return p.explore(x), nil
	}
	grad, err := p.jacobian(x)
	if err != nil {
		return p.explore(x), nil //nolint:nilerr // exploration is the designed fallback
	}
	dir := p.descentDirection(grad, f)
	if dir.Norm() < 1e-12 {
		// Stationary (Pareto-critical): small random probe keeps the
		// sample cloud informative without leaving the neighbourhood.
		return p.perturb(x, p.opts.MaxStep/4), nil
	}
	next := x.Clone().AXPY(-p.opts.StepSize, dir)
	return p.project(x, next), nil
}

// Propose returns up to n candidate configurations around x: the PALD
// descent step first, then trust-region perturbations of it. The Tempo
// control loop evaluates all of them in the What-if Model and applies the
// best (§4 explores 5 candidates per loop).
func (p *Optimizer) Propose(x linalg.Vector, f []float64, n int) ([]linalg.Vector, error) {
	if n <= 0 {
		return nil, nil
	}
	first, err := p.Step(x, f)
	if err != nil {
		return nil, err
	}
	out := []linalg.Vector{first}
	for len(out) < n {
		out = append(out, p.perturb(x, p.opts.MaxStep))
	}
	return out, nil
}

// jacobian estimates ∇f_i at x for every objective via LOESS.
func (p *Optimizer) jacobian(x linalg.Vector) (*linalg.Matrix, error) {
	k := len(p.targets)
	jac := linalg.NewMatrix(k, p.dim)
	samples := make([]loess.Sample, len(p.xs))
	for i := range p.targets {
		for j := range p.xs {
			samples[j] = loess.Sample{X: p.xs[j], Y: p.fs[j][i]}
		}
		g, err := loess.Gradient(samples, x, loess.Options{Span: p.opts.Span})
		if err != nil {
			return nil, err
		}
		copy(jac.Row(i), g)
	}
	return jac, nil
}

// violated returns the indices of constrained objectives with f_i >= r_i.
func (p *Optimizer) violated(f []float64) []int {
	var out []int
	for i, t := range p.targets {
		if t.Constrained && f[i] >= t.R {
			out = append(out, i)
		}
	}
	return out
}

// descentDirection computes ∇s(x) of the proxy objective: the c-weighted
// gradient combination with violated objectives deflated by (1−ρ).
func (p *Optimizer) descentDirection(jac *linalg.Matrix, f []float64) linalg.Vector {
	k := len(p.targets)
	viol := p.violated(f)
	gram := jac.Gram()
	c := p.solveC(gram, viol)
	rho := chooseRho(gram, c, viol)
	dir := linalg.NewVector(p.dim)
	for i := 0; i < k; i++ {
		w := c[i]
		if containsInt(viol, i) {
			w *= 1 - rho
		}
		dir.AXPY(w, jac.Row(i))
	}
	return dir
}

// solveC chooses the weight vector c. With violated constraints it solves
// the paper's max-min LP
//
//	maximize z  s.t.  (J_V Jᵀ)c >= z·1,  c >= 0,  z <= ε
//
// so the step improves the *worst* violated SLO fastest (max-min fairness).
// Without violations it falls back to uniform weights (pure weighted-sum
// descent on the best-effort objectives).
func (p *Optimizer) solveC(gram *linalg.Matrix, viol []int) linalg.Vector {
	k := gram.Rows
	uniform := linalg.NewVector(k)
	for i := range uniform {
		uniform[i] = 1 / float64(k)
	}
	if len(viol) == 0 {
		return uniform
	}
	// Variables: c_1..c_k, u with z = ε − u.
	obj := make([]float64, k+1)
	obj[k] = -1
	var cons []lp.Constraint
	for _, i := range viol {
		row := make([]float64, k+1)
		for j := 0; j < k; j++ {
			row[j] = gram.At(i, j)
		}
		row[k] = 1
		cons = append(cons, lp.Constraint{A: row, Sense: lp.GE, B: p.opts.Epsilon})
	}
	capRow := make([]float64, k+1)
	for j := 0; j < k; j++ {
		capRow[j] = 1
	}
	cons = append(cons, lp.Constraint{A: capRow, Sense: lp.LE, B: 10 * float64(k)})
	sol, err := lp.Solve(lp.Problem{Objective: obj, Constraints: cons})
	if err != nil || sol.Status != lp.Optimal {
		return uniform
	}
	c := linalg.Vector(sol.X[:k]).Clone()
	if n := c.Norm(); n > 1e-12 {
		c = c.Scale(1 / n)
	} else {
		return uniform
	}
	return c
}

// chooseRho picks ρ* per §6.3.1: among the candidate values derived from
// the Gram matrix, take the one (ρ < 1) that maximizes the worst violated
// objective's alignment with the descent direction, subject to every
// violated objective not increasing.
func chooseRho(gram *linalg.Matrix, c linalg.Vector, viol []int) float64 {
	if len(viol) == 0 {
		return 0
	}
	k := gram.Rows
	num := make([]float64, k)  // Σ_j c_j G_ij
	denp := make([]float64, k) // positive part
	denn := make([]float64, k) // negative part
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			v := c[j] * gram.At(i, j)
			num[i] += v
			if gram.At(i, j) >= 0 {
				denp[i] += v
			} else {
				denn[i] += v
			}
		}
	}
	candidates := []float64{0}
	rhoPlus := math.Inf(1)
	rhoMinus := math.Inf(-1)
	for _, i := range viol {
		if gradZero(gram, i) {
			continue
		}
		if denp[i] > 1e-12 {
			rhoPlus = math.Min(rhoPlus, num[i]/denp[i])
		}
		if denn[i] < -1e-12 {
			rhoMinus = math.Max(rhoMinus, num[i]/denn[i])
		}
	}
	if !math.IsInf(rhoPlus, 1) && rhoPlus >= 0 {
		candidates = append(candidates, math.Min(rhoPlus, 0.999))
	}
	if !math.IsInf(rhoMinus, -1) && rhoMinus < 0 {
		candidates = append(candidates, rhoMinus)
	}
	// Alignment of violated objective i with the step under candidate ρ:
	// a_i(ρ) = Σ_j c_j·m_j(ρ)·G_ij with m_j = (1−ρ) for violated j else 1.
	align := func(rho float64) float64 {
		worst := math.Inf(1)
		for _, i := range viol {
			var a float64
			for j := 0; j < k; j++ {
				m := 1.0
				if containsInt(viol, j) {
					m = 1 - rho
				}
				a += c[j] * m * gram.At(i, j)
			}
			worst = math.Min(worst, a)
		}
		return worst
	}
	best, bestA := 0.0, align(0)
	for _, rho := range candidates[1:] {
		if a := align(rho); a > bestA {
			best, bestA = rho, a
		}
	}
	// Never let a violated constraint's QS increase: if even the best
	// candidate has negative alignment the gradients genuinely conflict,
	// and ρ = best is still the least-bad choice bounded by the LP's c.
	return best
}

func gradZero(gram *linalg.Matrix, i int) bool {
	return math.Abs(gram.At(i, i)) < 1e-18
}

// explore returns a uniform random point inside the trust region around x.
func (p *Optimizer) explore(x linalg.Vector) linalg.Vector {
	return p.perturb(x, p.opts.MaxStep)
}

// perturb returns x plus a random displacement with norm <= radius, clamped
// to the unit cube.
func (p *Optimizer) perturb(x linalg.Vector, radius float64) linalg.Vector {
	d := linalg.NewVector(p.dim)
	for i := range d {
		d[i] = p.rng.NormFloat64()
	}
	// The radius draw is unconditional so every perturbation consumes a
	// fixed number of RNG draws: State/Restore resynchronizes by draw
	// count, and a draw skipped on a degenerate (~zero-norm) direction
	// would desynchronize resumed runs. Drawing after the direction loop
	// keeps the stream identical to the old code on the non-degenerate
	// path, so existing goldens are unaffected.
	u := p.rng.Float64()
	if n := d.Norm(); n > 1e-12 {
		scale := radius * math.Pow(u, 1/float64(p.dim)) / n
		d = d.Scale(scale)
	}
	return p.project(x, x.Add(d))
}

// project clamps next into the unit cube and the trust region around x.
func (p *Optimizer) project(x, next linalg.Vector) linalg.Vector {
	out := next.Clone().Clamp(0, 1)
	diff := out.Sub(x)
	if n := diff.Norm(); n > p.opts.MaxStep {
		out = x.Add(diff.Scale(p.opts.MaxStep/n)).Clamp(0, 1)
	}
	return out
}

// ProxyScore evaluates the proxy objective of (SP2) at a QS vector f:
//
//	s = Σ_i c_i·[f_i − ρ·max(f_i, r_i)]
//
// For a violated constraint (f_i > r_i) the term is c_i·(1−ρ)·f_i; for a
// satisfied one it is c_i·(f_i − ρ·r_i); unconstrained objectives carry no
// penalty anchor and contribute c_i·f_i. nil c means uniform weights. The
// Tempo control loop ranks what-if candidates by this score; Theorem 1
// guarantees the minimizer is weakly Pareto-optimal for (SP1).
func ProxyScore(f []float64, targets []Target, c []float64, rho float64) float64 {
	var s float64
	for i, v := range f {
		w := 1.0
		if c != nil {
			w = c[i]
		}
		r := math.Inf(1)
		if i < len(targets) && targets[i].Constrained {
			r = targets[i].R
		}
		m := v
		if r < v {
			m = v // violated: max(f, r) = f
		} else if !math.IsInf(r, 1) {
			m = r // satisfied: max(f, r) = r
		} else {
			m = 0 // unconstrained: no penalty anchor
		}
		s += w * (v - rho*m)
	}
	return s
}

// MaxRegret returns the largest constraint violation max_i (f_i − r_i)⁺
// over constrained objectives — the quantity PALD's max-min fairness
// minimizes when the problem is infeasible.
func MaxRegret(f []float64, targets []Target) float64 {
	regret := 0.0
	for i, t := range targets {
		if !t.Constrained || i >= len(f) {
			continue
		}
		if r := f[i] - t.R; r > regret {
			regret = r
		}
	}
	return regret
}

// Better reports whether QS vector a should be preferred over b. The
// ordering mirrors problem (SP2) faithfully: its constraints come first
// (smaller maximum regret wins — this is what the weighted-sum
// scalarization of §6.3 gets wrong), and among equally feasible points the
// proxy objective decides. Theorem 1 then guarantees the chosen point is
// not Pareto-dominated by any other candidate.
func Better(a, b []float64, targets []Target, c []float64, rho float64) bool {
	ra, rb := MaxRegret(a, targets), MaxRegret(b, targets)
	if math.Abs(ra-rb) > 1e-12 {
		return ra < rb
	}
	return ProxyScore(a, targets, c, rho) < ProxyScore(b, targets, c, rho)
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

package store

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"tempo/internal/scenario"
)

// storeSpecJSON is a small two-tenant replay scenario with the controller
// on — big enough that snapshots, WAL replay, and controller re-drive all
// carry real state, small enough to run many crash trials. The scale is
// deliberately high enough that this seed synthesizes jobs: at scale 0.4
// seed 1234 draws an empty workload, and empty schedules would let the
// codec's per-event paths pass these tests vacuously.
const storeSpecJSON = `{
  "name": "store-small",
  "seed": 1234,
  "capacity": 8,
  "interval_minutes": 5,
  "iterations": 6,
  "replay": true,
  "tenants": [
    {"name": "deadline", "profile": "deadline-driven", "scale": 2.0,
     "deadline": {"factor_lo": 1.2, "factor_hi": 1.8}},
    {"name": "besteffort", "profile": "best-effort", "scale": 2.0}
  ],
  "slos": [
    {"queue": "deadline", "metric": "deadline_violations", "slack": 0.25, "target": 0},
    {"queue": "besteffort", "metric": "avg_response_time"}
  ],
  "initial": {},
  "controller": {"candidates": 3, "max_step": 0.2}
}`

func storeSpec(t testing.TB) *scenario.Spec {
	t.Helper()
	spec, err := scenario.Load(strings.NewReader(storeSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func runReference(t testing.TB, spec *scenario.Spec) []byte {
	t.Helper()
	rep, err := scenario.Run(spec, scenario.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := rep.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestCodecRoundTrip locks EncodeTick/DecodeTick as exact inverses on
// real emulator output.
func TestCodecRoundTrip(t *testing.T) {
	spec := storeSpec(t)
	rt, err := scenario.Build(spec, scenario.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < spec.Iterations; i++ {
		if _, err := rt.Step(); err != nil {
			t.Fatal(err)
		}
		sched := rt.ObservedSchedule(i)
		payload := EncodeTick(nil, i, sched)
		tick, decoded, err := DecodeTick(payload)
		if err != nil {
			t.Fatalf("tick %d: %v", i, err)
		}
		if tick != i {
			t.Fatalf("decoded tick %d, want %d", tick, i)
		}
		if !decoded.Equal(sched) {
			t.Fatalf("tick %d: decoded schedule differs", i)
		}
		if !reflect.DeepEqual(decoded.Events(), sched.Events()) {
			t.Fatalf("tick %d: decoded event stream differs", i)
		}
	}
	// Corruption fails loudly, never panics.
	payload := EncodeTick(nil, 0, rt.ObservedSchedule(0))
	for _, cut := range []int{0, 1, 3, len(payload) / 2, len(payload) - 1} {
		if _, _, err := DecodeTick(payload[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	if _, _, err := DecodeTick(append(payload, 0)); err == nil {
		t.Error("trailing garbage accepted")
	}
}

// TestStoreRecoverByteIdentical is the store-level acceptance test: drive
// a live run appending each tick, snapshot midway, reopen the store cold,
// resume from snapshot + WAL, and require the finished report to be
// byte-identical to an uninterrupted run.
func TestStoreRecoverByteIdentical(t *testing.T) {
	spec := storeSpec(t)
	want := runReference(t, spec)
	opts := scenario.Options{Parallelism: 1}

	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cs, err := s.Create("c/1", spec)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := scenario.Build(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	const crashAfter = 4
	for i := 0; i < crashAfter; i++ {
		if i == 2 {
			snap, err := rt.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if err := cs.WriteSnapshot(snap); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := rt.Step(); err != nil {
			t.Fatal(err)
		}
		if err := cs.AppendTick(i, rt.ObservedSchedule(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Cold restart.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	cs2, err := s2.Get("c/1")
	if err != nil {
		t.Fatal(err)
	}
	if got := cs2.Ticks(); got != crashAfter {
		t.Fatalf("recovered %d ticks, want %d", got, crashAfter)
	}
	if !reflect.DeepEqual(spec, cs2.Spec()) {
		t.Fatal("recovered spec differs")
	}
	schedules, err := cs2.Schedules()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := cs2.LoadSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.Cursor != 2 {
		t.Fatalf("recovered snapshot %+v, want cursor 2", snap)
	}
	resumed, err := scenario.Resume(cs2.Spec(), opts, snap, schedules)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := resumed.Run()
	if err != nil {
		t.Fatal(err)
	}
	got, err := rep.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("recovered report differs from uninterrupted run")
	}
}

// TestStoreCrashOffsets sweeps randomized injected-crash offsets over the
// WAL byte stream: whatever prefix survives, recovery (snapshot when
// usable, WAL-only fallback otherwise, re-ticking the lost tail live)
// must finish with byte-identical output.
func TestStoreCrashOffsets(t *testing.T) {
	spec := storeSpec(t)
	want := runReference(t, spec)
	opts := scenario.Options{Parallelism: 1}

	// Measure the full WAL size once to aim the fault offsets.
	probe := t.TempDir()
	{
		s, err := Open(probe, Options{})
		if err != nil {
			t.Fatal(err)
		}
		cs, err := s.Create("c", spec)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := scenario.Build(spec, opts)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < spec.Iterations; i++ {
			if _, err := rt.Step(); err != nil {
				t.Fatal(err)
			}
			if err := cs.AppendTick(i, rt.ObservedSchedule(i)); err != nil {
				t.Fatal(err)
			}
		}
		fullSize := cs.WALSize()
		s.Close()
		if fullSize == 0 {
			t.Fatal("empty reference WAL")
		}

		rng := rand.New(rand.NewSource(99))
		trials := 8
		if testing.Short() {
			trials = 3
		}
		for trial := 0; trial < trials; trial++ {
			limit := int64(rng.Intn(int(fullSize)))
			snapshotAt := rng.Intn(spec.Iterations)
			t.Run("", func(t *testing.T) {
				runCrashTrial(t, spec, opts, want, limit, snapshotAt)
			})
		}
	}
}

func runCrashTrial(t *testing.T, spec *scenario.Spec, opts scenario.Options, want []byte, limit int64, snapshotAt int) {
	t.Helper()
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cs, err := s.Create("c", spec)
	if err != nil {
		t.Fatal(err)
	}
	cs.InjectFault(limit)
	rt, err := scenario.Build(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < spec.Iterations; i++ {
		if i == snapshotAt {
			snap, err := rt.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if err := cs.WriteSnapshot(snap); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := rt.Step(); err != nil {
			t.Fatal(err)
		}
		if err := cs.AppendTick(i, rt.ObservedSchedule(i)); err != nil {
			if !errors.Is(err, ErrFaultInjected) {
				t.Fatal(err)
			}
			break // crashed
		}
	}
	// The crash: no Close, no flush — just abandon and reopen.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	cs2, err := s2.Get("c")
	if err != nil {
		t.Fatal(err)
	}
	schedules, err := cs2.Schedules()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := cs2.LoadSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := scenario.Resume(cs2.Spec(), opts, snap, schedules)
	if err != nil && snap != nil {
		// Snapshot reaches past the surviving WAL: fall back to WAL-only.
		resumed, err = scenario.Resume(cs2.Spec(), opts, nil, schedules)
	}
	if err != nil {
		t.Fatalf("limit=%d snapshotAt=%d: %v", limit, snapshotAt, err)
	}
	// Re-tick the lost tail live, appending to the recovered WAL as the
	// service would.
	for i := resumed.StepsDone(); i < spec.Iterations; i++ {
		if _, err := resumed.Step(); err != nil {
			t.Fatal(err)
		}
		if err := cs2.AppendTick(i, resumed.ObservedSchedule(i)); err != nil {
			t.Fatal(err)
		}
	}
	rep := resumed.Report()
	got, err := rep.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("limit=%d snapshotAt=%d: recovered report differs", limit, snapshotAt)
	}
}

// TestStoreDelete removes on-disk state for good.
func TestStoreDelete(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec := storeSpec(t)
	if _, err := s.Create("gone", spec); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("gone"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("gone"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
	s.Close()
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if ids := s2.IDs(); len(ids) != 0 {
		t.Fatalf("deleted cluster resurrected: %v", ids)
	}
}

// TestStoreCreateValidates rejects duplicates and empty ids.
func TestStoreCreateValidates(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	spec := storeSpec(t)
	if _, err := s.Create("", spec); err == nil {
		t.Error("empty id accepted")
	}
	if _, err := s.Create("dup", spec); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create("dup", spec); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate create: %v", err)
	}
}

// TestEscapeID locks the directory-name escaping: injective, reversible,
// and free of path separators and dot-names.
func TestEscapeID(t *testing.T) {
	ids := []string{
		"simple", "with/slash", "with\\backslash", "..", ".", "%", "%%2f",
		"dots.and.spaces here", "unicode-ü-名", "", "a%2fb",
	}
	seen := map[string]string{}
	for _, id := range ids {
		esc := escapeID(id)
		if strings.ContainsAny(esc, "/\\.") {
			t.Errorf("escapeID(%q) = %q contains a separator or dot", id, esc)
		}
		if prev, dup := seen[esc]; dup {
			t.Errorf("escapeID collision: %q and %q both map to %q", prev, id, esc)
		}
		seen[esc] = id
		back, err := unescapeID(esc)
		if err != nil {
			t.Errorf("unescapeID(%q): %v", esc, err)
		} else if back != id {
			t.Errorf("round trip %q -> %q -> %q", id, esc, back)
		}
	}
	if _, err := unescapeID("%zz"); err == nil {
		t.Error("bad escape accepted")
	}
	if _, err := unescapeID("%2"); err == nil {
		t.Error("truncated escape accepted")
	}
}

// TestAppendTickOrdering rejects out-of-order and duplicate ticks.
func TestAppendTickOrdering(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	spec := storeSpec(t)
	cs, err := s.Create("c", spec)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := scenario.Build(spec, scenario.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Step(); err != nil {
		t.Fatal(err)
	}
	sched := rt.ObservedSchedule(0)
	if err := cs.AppendTick(1, sched); err == nil {
		t.Error("tick gap accepted")
	}
	if err := cs.AppendTick(0, sched); err != nil {
		t.Fatal(err)
	}
	if err := cs.AppendTick(0, sched); err == nil {
		t.Error("duplicate tick accepted")
	}
}

// TestSnapshotAtomicReplace overwrites a snapshot and reads back the
// newest one; a scribbled snapshot file is discarded, not fatal.
func TestSnapshotAtomicReplace(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	spec := storeSpec(t)
	cs, err := s.Create("c", spec)
	if err != nil {
		t.Fatal(err)
	}
	if snap, err := cs.LoadSnapshot(); err != nil || snap != nil {
		t.Fatalf("fresh cluster snapshot = %v, %v", snap, err)
	}
	rt, err := scenario.Build(spec, scenario.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		snap, err := rt.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if err := cs.WriteSnapshot(snap); err != nil {
			t.Fatal(err)
		}
		if _, err := rt.Step(); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := cs.LoadSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.Cursor != 1 {
		t.Fatalf("snapshot cursor = %+v, want 1", snap)
	}
	// Scribble the file: recovery treats it as absent.
	if err := os.WriteFile(filepath.Join(cs.dir, "snapshot.json"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if snap, err := cs.LoadSnapshot(); err != nil || snap != nil {
		t.Fatalf("scribbled snapshot = %v, %v; want nil, nil", snap, err)
	}
}

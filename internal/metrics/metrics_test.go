package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestRAEPerfectPrediction(t *testing.T) {
	obs := []float64{1, 2, 3, 4}
	got, err := RAE(obs, obs)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("RAE = %v, want 0", got)
	}
}

func TestRAEMeanPredictorIsOne(t *testing.T) {
	obs := []float64{1, 2, 3, 4, 10}
	mean := Mean(obs)
	pred := []float64{mean, mean, mean, mean, mean}
	got, err := RAE(pred, obs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("RAE of mean predictor = %v, want 1", got)
	}
}

func TestRSEKnownValue(t *testing.T) {
	obs := []float64{0, 2}
	pred := []float64{1, 1} // mean predictor
	got, err := RSE(pred, obs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("RSE = %v, want 1", got)
	}
}

func TestRAERSEErrors(t *testing.T) {
	if _, err := RAE([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := RSE([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := RAE(nil, nil); err == nil {
		t.Fatal("empty series accepted")
	}
	if _, err := RSE(nil, nil); err == nil {
		t.Fatal("empty series accepted")
	}
}

func TestRAEConstantSeries(t *testing.T) {
	// Zero denominator: perfect prediction → 0, otherwise +Inf.
	got, err := RAE([]float64{5, 5}, []float64{5, 5})
	if err != nil || got != 0 {
		t.Fatalf("constant perfect RAE = %v, %v", got, err)
	}
	got, err = RAE([]float64{6, 6}, []float64{5, 5})
	if err != nil || !math.IsInf(got, 1) {
		t.Fatalf("constant imperfect RAE = %v", got)
	}
	gotR, err := RSE([]float64{5, 5}, []float64{5, 5})
	if err != nil || gotR != 0 {
		t.Fatalf("constant perfect RSE = %v", gotR)
	}
	gotR, _ = RSE([]float64{6, 6}, []float64{5, 5})
	if !math.IsInf(gotR, 1) {
		t.Fatalf("constant imperfect RSE = %v", gotR)
	}
}

func TestMeanStddev(t *testing.T) {
	if Mean(nil) != 0 || Stddev(nil) != 0 {
		t.Fatal("empty should be 0")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Fatalf("Mean = %v", Mean(xs))
	}
	if Stddev(xs) != 2 {
		t.Fatalf("Stddev = %v", Stddev(xs))
	}
}

func TestCDFAtAndQuantile(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	if c.Len() != 4 {
		t.Fatalf("Len = %d", c.Len())
	}
	if got := c.At(2); got != 0.5 {
		t.Fatalf("At(2) = %v, want 0.5", got)
	}
	if got := c.At(0.5); got != 0 {
		t.Fatalf("At(0.5) = %v, want 0", got)
	}
	if got := c.At(9); got != 1 {
		t.Fatalf("At(9) = %v, want 1", got)
	}
	if got := c.Quantile(0); got != 1 {
		t.Fatalf("Q(0) = %v", got)
	}
	if got := c.Quantile(1); got != 4 {
		t.Fatalf("Q(1) = %v", got)
	}
	if got := c.Quantile(0.5); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("median = %v, want 2.5", got)
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.At(1) != 0 || c.Quantile(0.5) != 0 || c.Points(5) != nil {
		t.Fatal("empty CDF should be all zeros")
	}
}

func TestCDFPointsMonotone(t *testing.T) {
	c := NewCDF([]float64{5, 1, 9, 3, 7})
	pts := c.Points(11)
	if len(pts) != 11 {
		t.Fatalf("points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].Y < pts[i-1].Y {
			t.Fatalf("points not monotone at %d: %+v", i, pts)
		}
	}
	if pts[0].Y != 0 || pts[10].Y != 1 {
		t.Fatal("endpoints wrong")
	}
}

func TestMovingAverageWindow(t *testing.T) {
	series := []TimePoint{
		{At: 0, Value: 10},
		{At: time.Minute, Value: 20},
		{At: 2 * time.Minute, Value: 30},
		{At: 10 * time.Minute, Value: 100},
	}
	ma := MovingAverage(series, 5*time.Minute)
	if len(ma) != 4 {
		t.Fatalf("len = %d", len(ma))
	}
	if ma[0].Value != 10 {
		t.Fatalf("ma[0] = %v", ma[0].Value)
	}
	if ma[1].Value != 15 {
		t.Fatalf("ma[1] = %v", ma[1].Value)
	}
	if ma[2].Value != 20 {
		t.Fatalf("ma[2] = %v", ma[2].Value)
	}
	// At t=10m the window [5m,10m] holds only the last point.
	if ma[3].Value != 100 {
		t.Fatalf("ma[3] = %v", ma[3].Value)
	}
}

func TestMovingAverageZeroWindowIdentity(t *testing.T) {
	series := []TimePoint{{At: 0, Value: 1}, {At: 1, Value: 9}}
	ma := MovingAverage(series, 0)
	if len(ma) != 2 || ma[1].Value != 9 {
		t.Fatalf("identity MA = %v", ma)
	}
}

func TestDownsample(t *testing.T) {
	var series []TimePoint
	for i := 0; i < 100; i++ {
		series = append(series, TimePoint{At: time.Duration(i) * time.Second, Value: float64(i)})
	}
	ds := Downsample(series, 10)
	if len(ds) > 10 {
		t.Fatalf("downsampled to %d, want <= 10", len(ds))
	}
	for i := 1; i < len(ds); i++ {
		if ds[i].At <= ds[i-1].At {
			t.Fatal("not time-ordered")
		}
	}
	// Short series pass through.
	if got := Downsample(series[:5], 10); len(got) != 5 {
		t.Fatalf("short series = %d", len(got))
	}
	// Degenerate time span.
	same := []TimePoint{{At: 5, Value: 1}, {At: 5, Value: 3}}
	if got := Downsample(same, 1); len(got) != 1 {
		t.Fatalf("degenerate = %v", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{1, 3, 5, 7, 9, -5, 15} {
		h.Add(v)
	}
	if h.Total != 7 {
		t.Fatalf("total = %d", h.Total)
	}
	if h.Counts[0] != 2 { // 1 and clamped -5
		t.Fatalf("bin0 = %d", h.Counts[0])
	}
	if h.Counts[4] != 2 { // 9 and clamped 15
		t.Fatalf("bin4 = %d", h.Counts[4])
	}
	if got := h.Fraction(0); math.Abs(got-2.0/7) > 1e-12 {
		t.Fatalf("Fraction = %v", got)
	}
	if NewHistogram(0, 1, 0).Counts == nil {
		t.Fatal("zero bins not clamped")
	}
	if (&Histogram{Counts: make([]int, 1)}).Fraction(0) != 0 {
		t.Fatal("empty histogram fraction")
	}
}

// Property: RAE and RSE are zero iff prediction equals observation, and
// scale-invariant: scaling both series leaves them unchanged.
func TestPropertyErrorScaleInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		obs := make([]float64, n)
		pred := make([]float64, n)
		for i := range obs {
			obs[i] = rng.NormFloat64() * 10
			pred[i] = obs[i] + rng.NormFloat64()
		}
		r1, err1 := RAE(pred, obs)
		if err1 != nil {
			return false
		}
		scale := 3.7
		obs2 := make([]float64, n)
		pred2 := make([]float64, n)
		for i := range obs {
			obs2[i] = obs[i] * scale
			pred2[i] = pred[i] * scale
		}
		r2, err2 := RAE(pred2, obs2)
		if err2 != nil {
			return false
		}
		if math.Abs(r1-r2) > 1e-9 {
			return false
		}
		s1, _ := RSE(pred, obs)
		s2, _ := RSE(pred2, obs2)
		return math.Abs(s1-s2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: CDF.At is a nondecreasing function from 0 to 1.
func TestPropertyCDFMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = rng.NormFloat64()
		}
		c := NewCDF(samples)
		prev := -1.0
		for x := -3.0; x <= 3.0; x += 0.25 {
			p := c.At(x)
			if p < prev || p < 0 || p > 1 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

package exp

import (
	"fmt"
	"math/rand"
	"time"

	"tempo/internal/core"
	"tempo/internal/linalg"
	"tempo/internal/pald"
)

// StrategyComparisonRow is one optimizer's outcome on the constrained
// two-tenant scenario under an equal what-if budget.
type StrategyComparisonRow struct {
	Strategy string
	// FinalAJR is the final-quarter mean best-effort response time.
	FinalAJR float64
	// FinalDLViolations is the final-quarter mean deadline-miss fraction.
	FinalDLViolations float64
	// AJRImprovement is relative to iteration 0.
	AJRImprovement float64
	// MeanMaxRegret averages the per-iteration worst constraint violation.
	MeanMaxRegret float64
}

// StrategyComparisonResult compares PALD against the weighted-sum and
// random-search baselines (the §6.2/§9 ablation).
type StrategyComparisonResult struct {
	Iterations int
	Rows       []StrategyComparisonRow
}

// CompareStrategies runs the same constrained scenario under PALD,
// weighted-sum scalarization, and random search.
func CompareStrategies(seed int64, iterations int) (*StrategyComparisonResult, error) {
	if iterations <= 0 {
		iterations = 12
	}
	res := &StrategyComparisonResult{Iterations: iterations}
	type entry struct {
		name  string
		build func(dim int) (pald.Strategy, error)
	}
	entries := []entry{
		{"pald", func(int) (pald.Strategy, error) { return nil, nil }}, // controller default
		{"weighted-sum", func(dim int) (pald.Strategy, error) {
			return pald.NewWeightedSum(dim, 2, pald.Options{Seed: seed + 41, MaxStep: 0.2})
		}},
		{"random-search", func(dim int) (pald.Strategy, error) {
			return pald.NewRandomSearch(dim, 0.2, seed+43)
		}},
	}
	for _, e := range entries {
		strategy, err := e.build(10) // two tenants × five params
		if err != nil {
			return nil, err
		}
		ctl, err := buildTwoTenantController(seed, 0.25, nil, time.Hour, strategy, core.RevertOnWorse)
		if err != nil {
			return nil, err
		}
		history, err := ctl.Run(iterations)
		if err != nil {
			return nil, err
		}
		row := StrategyComparisonRow{Strategy: e.name}
		tail := history[(3*len(history))/4:]
		var regret float64
		for _, it := range history {
			if r := it.Observed[0] - 0.0; r > 0 { // DL target is 0
				regret += r
			}
		}
		row.MeanMaxRegret = regret / float64(len(history))
		var ajr, dl float64
		for _, it := range tail {
			ajr += it.Observed[1]
			dl += it.Observed[0]
		}
		row.FinalAJR = ajr / float64(len(tail))
		row.FinalDLViolations = dl / float64(len(tail))
		row.AJRImprovement = core.Improvement(history, 1)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the comparison.
func (r *StrategyComparisonResult) Render() string {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Strategy,
			fmt.Sprintf("%.1f", row.FinalAJR),
			fmt.Sprintf("%.3f", row.FinalDLViolations),
			fmt.Sprintf("%+.1f%%", row.AJRImprovement*100),
			fmt.Sprintf("%.4f", row.MeanMaxRegret),
		})
	}
	return fmt.Sprintf("Ablation: optimizer strategies (%d iterations, equal what-if budget)\n", r.Iterations) +
		table([]string{"strategy", "final AJR s", "final DL", "AJR improvement", "mean regret"}, rows)
}

// GuardAblationRow is one (trust region, revert guard) configuration.
type GuardAblationRow struct {
	Name string
	// WorstStepRegression is the largest iteration-to-iteration increase
	// in best-effort AJR (normalized to iteration 0) — the production-risk
	// quantity the trust region and revert guard bound.
	WorstStepRegression float64
	// AJRImprovement at convergence.
	AJRImprovement float64
	// Reverts counts guard activations.
	Reverts int
}

// GuardAblationResult compares trust-region and revert-guard settings.
type GuardAblationResult struct {
	Rows []GuardAblationRow
}

// GuardAblation runs the constrained scenario with (a) the default bounded
// trust region + guard, (b) a wide-open trust region, and (c) the guard
// disabled, reporting regression risk versus convergence.
func GuardAblation(seed int64, iterations int) (*GuardAblationResult, error) {
	if iterations <= 0 {
		iterations = 12
	}
	type variant struct {
		name    string
		maxStep float64
		revert  core.RevertPolicy
	}
	variants := []variant{
		{"trust=0.2 guard=on", 0.2, core.RevertOnWorse},
		{"trust=0.8 guard=on", 0.8, core.RevertOnWorse},
		{"trust=0.2 guard=off", 0.2, core.RevertOff},
	}
	res := &GuardAblationResult{}
	for _, v := range variants {
		strategy, err := pald.New(10, make([]pald.Target, 2), pald.Options{Seed: seed + 53, MaxStep: v.maxStep})
		if err != nil {
			return nil, err
		}
		ctl, err := buildTwoTenantController(seed, 0.25, nil, time.Hour, strategy, v.revert)
		if err != nil {
			return nil, err
		}
		history, err := ctl.Run(iterations)
		if err != nil {
			return nil, err
		}
		row := GuardAblationRow{Name: v.name, AJRImprovement: core.Improvement(history, 1)}
		base := history[0].Observed[1]
		if base <= 0 {
			base = 1
		}
		for i := 1; i < len(history); i++ {
			delta := (history[i].Observed[1] - history[i-1].Observed[1]) / base
			if delta > row.WorstStepRegression {
				row.WorstStepRegression = delta
			}
			if history[i].Reverted {
				row.Reverts++
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the ablation table.
func (r *GuardAblationResult) Render() string {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Name,
			fmt.Sprintf("%.2f", row.WorstStepRegression),
			fmt.Sprintf("%+.1f%%", row.AJRImprovement*100),
			fmt.Sprintf("%d", row.Reverts),
		})
	}
	return "Ablation: trust region and revert guard (regression risk vs convergence)\n" +
		table([]string{"variant", "worst step regression", "AJR improvement", "reverts"}, rows)
}

// GradientAblationResult compares LOESS and central finite differences as
// gradient estimators under measurement noise.
type GradientAblationResult struct {
	// Cosine similarity to the true gradient (higher is better).
	LoessCosine, FDCosine float64
	// Evaluations consumed by each estimator.
	LoessEvals, FDEvals int
}

// GradientAblation evaluates both estimators on a noisy quadratic with a
// known gradient. LOESS reuses one shared pool of samples (as PALD's
// history does); finite differences must pay 2·dim fresh evaluations and
// inherits their noise directly.
func GradientAblation(seed int64) (*GradientAblationResult, error) {
	rng := rand.New(rand.NewSource(seed))
	dim := 6
	anchor := linalg.NewVector(dim)
	for i := range anchor {
		anchor[i] = rng.Float64()
	}
	noise := 0.02
	eval := func(x linalg.Vector) []float64 {
		d := x.Sub(anchor)
		return []float64{d.Dot(d) + noise*rng.NormFloat64()}
	}
	x0 := linalg.NewVector(dim)
	for i := range x0 {
		x0[i] = 0.5
	}
	trueGrad := x0.Sub(anchor).Scale(2)

	// LOESS over a pooled history of nearby samples.
	pool := 6 * dim
	xs := make([]linalg.Vector, pool)
	fs := make([][]float64, pool)
	for i := 0; i < pool; i++ {
		x := x0.Clone()
		for j := range x {
			x[j] += (rng.Float64() - 0.5) * 0.3
		}
		xs[i] = x
		fs[i] = eval(x)
	}
	loessJac, err := pald.LoessJacobian(xs, fs, x0, 0.9)
	if err != nil {
		return nil, err
	}
	fd, err := pald.NewFiniteDifference(dim, 0.02, func(x linalg.Vector) ([]float64, error) {
		return eval(x), nil
	})
	if err != nil {
		return nil, err
	}
	fdJac, err := fd.Jacobian(x0, 1)
	if err != nil {
		return nil, err
	}
	return &GradientAblationResult{
		LoessCosine: cosine(loessJac.Row(0), trueGrad),
		FDCosine:    cosine(fdJac.Row(0), trueGrad),
		LoessEvals:  pool,
		FDEvals:     2 * dim,
	}, nil
}

func cosine(a, b linalg.Vector) float64 {
	na, nb := a.Norm(), b.Norm()
	if na < 1e-12 || nb < 1e-12 {
		return 0
	}
	return a.Dot(b) / (na * nb)
}

// Render prints the comparison.
func (r *GradientAblationResult) Render() string {
	return fmt.Sprintf(`Ablation: gradient estimation under noise
LOESS cosine similarity   %.3f  (%d pooled evaluations, reused across iterations)
central-diff cosine       %.3f  (%d fresh evaluations per gradient)
`, r.LoessCosine, r.LoessEvals, r.FDCosine, r.FDEvals)
}

// ProxyCounterexampleResult demonstrates §6.3's weighted-sum failure.
type ProxyCounterexampleResult struct {
	WeightedSumPick []float64
	PALDPick        []float64
	Targets         []float64
	WeightedSumFeasible,
	PALDFeasible bool
}

// ProxyCounterexample scores the paper's two candidate QS vectors (5,5)
// and (0,7) against r = (6,6) under both orderings.
func ProxyCounterexample() *ProxyCounterexampleResult {
	feasible := []float64{5, 5}
	infeasible := []float64{0, 7}
	targets := []pald.Target{{R: 6, Constrained: true}, {R: 6, Constrained: true}}
	res := &ProxyCounterexampleResult{Targets: []float64{6, 6}}
	// Weighted sum: plain sum comparison.
	if sum(infeasible) < sum(feasible) {
		res.WeightedSumPick = infeasible
	} else {
		res.WeightedSumPick = feasible
	}
	if pald.Better(feasible, infeasible, targets, nil, 0.5) {
		res.PALDPick = feasible
	} else {
		res.PALDPick = infeasible
	}
	res.WeightedSumFeasible = pald.MaxRegret(res.WeightedSumPick, targets) == 0
	res.PALDFeasible = pald.MaxRegret(res.PALDPick, targets) == 0
	return res
}

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Render prints the counterexample outcome.
func (r *ProxyCounterexampleResult) Render() string {
	return fmt.Sprintf(`Ablation: §6.3 scalarization counterexample, r = %v
weighted sum picks %v (feasible: %v)
PALD ordering picks %v (feasible: %v)
`, r.Targets, r.WeightedSumPick, r.WeightedSumFeasible, r.PALDPick, r.PALDFeasible)
}

package service

import "time"

// Metrics is the service-wide counter snapshot GET /metrics serves.
type Metrics struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Clusters      int     `json:"clusters"`
	Ticks         int64   `json:"ticks"`
	WhatIfEvals   int64   `json:"whatif_evals"`
	QSQueries     int64   `json:"qs_queries"`
	// AdHocQueries counts one-shot POST /v1/clusters/{id}/query requests;
	// ActiveStreams is the live standing-subscription gauge (bounded by
	// Config.MaxStreams).
	AdHocQueries  int64 `json:"adhoc_queries"`
	ActiveStreams int64 `json:"active_streams"`
	// ScoredCandidates and PrunedCandidates total the controllers' search
	// stats across all clusters: candidates fully scored through the
	// what-if simulator vs. discarded by the QS lower bound before
	// simulation. pruned/(scored+pruned) is the live pruning rate.
	ScoredCandidates int64 `json:"scored_candidates"`
	PrunedCandidates int64 `json:"pruned_candidates"`
	// DegradedClusters is the read-only-cluster gauge: clusters whose
	// durable store is failing, serving reads from the last committed
	// state while the recovery probe retries. ShedRequests totals
	// requests refused without execution (admission-deadline sheds plus
	// chaos-injected handler errors).
	DegradedClusters int64          `json:"degraded_clusters"`
	ShedRequests     int64          `json:"shed_requests"`
	Shards           []ShardMetrics `json:"shards"`
}

// ShardMetrics is one shard's slice of the snapshot. Tick and decision
// latencies are quantiles over the shard's recent-latency window; they
// are zero until the shard has completed a tick (for decision latencies:
// a controller-enabled tick).
type ShardMetrics struct {
	Shard            int     `json:"shard"`
	Clusters         int     `json:"clusters"`
	Workers          int     `json:"workers"`
	QueueLength      int     `json:"queue_length"`
	Ticks            int64   `json:"ticks"`
	WhatIfEvals      int64   `json:"whatif_evals"`
	ScoredCandidates int64   `json:"scored_candidates"`
	PrunedCandidates int64   `json:"pruned_candidates"`
	ShedRequests     int64   `json:"shed_requests"`
	TickLatencyP50Ms float64 `json:"tick_latency_p50_ms"`
	TickLatencyP99Ms float64 `json:"tick_latency_p99_ms"`
	// Decision latency is the controller's propose→apply span within a
	// tick — the slice of tick latency the incremental candidate search
	// is responsible for.
	DecisionLatencyP50Ms float64 `json:"decision_latency_p50_ms"`
	DecisionLatencyP99Ms float64 `json:"decision_latency_p99_ms"`
}

// Metrics snapshots the service's counters. Counters are read without a
// global pause, so the snapshot is approximate under concurrent traffic —
// each individual counter is still exact.
func (s *Service) Metrics() Metrics {
	m := Metrics{
		UptimeSeconds:    time.Since(s.start).Seconds(),
		QSQueries:        s.qsQueries.get(),
		WhatIfEvals:      s.whatifEvals.get(),
		AdHocQueries:     s.queryOneShot.get(),
		ActiveStreams:    s.streams.get(),
		DegradedClusters: s.degradedGauge.get(),
		ShedRequests:     s.shedRequests.get(),
	}
	perShard := make([]int, len(s.shards))
	s.mu.RLock()
	m.Clusters = len(s.clusters)
	for _, c := range s.clusters {
		perShard[c.Shard]++
	}
	s.mu.RUnlock()
	for i, sh := range s.shards {
		sm := ShardMetrics{
			Shard:            i,
			Clusters:         perShard[i],
			Workers:          s.cfg.WorkersPerShard,
			QueueLength:      len(sh.jobs),
			Ticks:            sh.ticks.get(),
			WhatIfEvals:      sh.whatifEvals.get(),
			ScoredCandidates: sh.scored.get(),
			PrunedCandidates: sh.pruned.get(),
			ShedRequests:     sh.shed.get(),
		}
		if p50, p99, ok := sh.lat.quantiles(); ok {
			sm.TickLatencyP50Ms = float64(p50) / float64(time.Millisecond)
			sm.TickLatencyP99Ms = float64(p99) / float64(time.Millisecond)
		}
		if p50, p99, ok := sh.decLat.quantiles(); ok {
			sm.DecisionLatencyP50Ms = float64(p50) / float64(time.Millisecond)
			sm.DecisionLatencyP99Ms = float64(p99) / float64(time.Millisecond)
		}
		m.Ticks += sm.Ticks
		m.ScoredCandidates += sm.ScoredCandidates
		m.PrunedCandidates += sm.PrunedCandidates
		m.Shards = append(m.Shards, sm)
	}
	return m
}

package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tempo/internal/workload"
)

// TestMain lets the test binary double as the simulate binary: when
// SIMULATE_RUN_MAIN is set, it runs main() with the process arguments
// instead of the test suite. Tests re-exec themselves with that variable
// set to exercise real flag parsing, exit codes, and stderr output.
func TestMain(m *testing.M) {
	if os.Getenv("SIMULATE_RUN_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runCLI executes the simulate binary (this test binary re-exec'd) with the
// given arguments.
func runCLI(t *testing.T, args ...string) (stdout, stderr string, exitCode int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "SIMULATE_RUN_MAIN=1")
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	err := cmd.Run()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return out.String(), errBuf.String(), ee.ExitCode()
		}
		t.Fatalf("running CLI: %v", err)
	}
	return out.String(), errBuf.String(), 0
}

// writeTrace generates a small two-tenant trace file for CLI runs.
func writeTrace(t *testing.T) string {
	t.Helper()
	profiles := []workload.TenantProfile{
		workload.DeadlineDriven("etl", 1.5),
		workload.BestEffort("adhoc", 1.5),
	}
	trace, err := workload.Generate(profiles, workload.GenerateOptions{
		Horizon: 30 * time.Minute, Seed: 3, Name: "cli-test",
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := trace.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareRejectsConflictingFlags(t *testing.T) {
	trace := writeTrace(t)
	cases := []struct {
		name  string
		extra []string
		want  []string
	}{
		{"noise", []string{"-noise"}, []string{"-noise"}},
		{"config", []string{"-config", "x.json"}, []string{"-config"}},
		{"seed and capacity", []string{"-seed", "9", "-capacity", "10"}, []string{"-seed", "-capacity"}},
		{"out files", []string{"-out-tasks", "a.csv", "-out-jobs", "b.csv"}, []string{"-out-tasks", "-out-jobs"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			args := append([]string{"-trace", trace, "-compare", "a.json,b.json"}, tc.extra...)
			_, stderr, code := runCLI(t, args...)
			if code != 1 {
				t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, stderr)
			}
			if !strings.Contains(stderr, "cannot be combined") {
				t.Fatalf("stderr %q does not explain the flag conflict", stderr)
			}
			for _, flag := range tc.want {
				if !strings.Contains(stderr, flag) {
					t.Errorf("stderr %q does not name the conflicting flag %s", stderr, flag)
				}
			}
		})
	}
}

func TestCompareRequiresTrace(t *testing.T) {
	_, stderr, code := runCLI(t, "-compare", "a.json,b.json")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if !strings.Contains(stderr, "-trace is required") {
		t.Fatalf("stderr %q does not mention the missing -trace", stderr)
	}
}

func TestCompareScoresConfigs(t *testing.T) {
	trace := writeTrace(t)
	dir := t.TempDir()
	cfgA := filepath.Join(dir, "a.json")
	cfgB := filepath.Join(dir, "b.json")
	if err := os.WriteFile(cfgA, []byte(`{"total_containers": 24, "tenants": {"etl": {"weight": 3}, "adhoc": {"weight": 1}}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cfgB, []byte(`{"total_containers": 24, "tenants": {"etl": {"weight": 1}, "adhoc": {"weight": 3}}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout, stderr, code := runCLI(t, "-trace", trace, "-compare", cfgA+","+cfgB, "-parallelism", "2")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "scored 2 configs") {
		t.Fatalf("stdout missing batch summary:\n%s", stdout)
	}
	for _, want := range []string{cfgA, cfgB, "etl AJR(s)", "adhoc AJR(s)"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout)
		}
	}
}

func TestSingleRunHappyPath(t *testing.T) {
	trace := writeTrace(t)
	stdout, stderr, code := runCLI(t, "-trace", trace, "-capacity", "24")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{"schedule{", "tenant", "etl", "adhoc"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout)
		}
	}
}

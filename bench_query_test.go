package tempo

import (
	"math"
	"testing"
	"time"

	"tempo/internal/qs"
	"tempo/internal/query"
)

// BenchmarkQueryVsOracle prices the ad-hoc query layer against the raw
// incremental QS evaluator it is built on: the whole stress-1000 SLO set
// re-expressed as a query plan (an slos aggregate over the events
// relation), evaluated over the same schedule qs.EvalStream scores
// directly. The two must agree bit for bit — the query layer's contract
// is that it adds vocabulary, not arithmetic — and the recorded overhead
// ratio (plan compile + row materialization over the bare evaluator) is
// the BENCH_9.json quantity the benchdiff gate holds flat.
func BenchmarkQueryVsOracle(b *testing.B) {
	sched, templates, err := stressEvalFixture()
	if err != nil {
		b.Fatal(err)
	}
	end := sched.Horizon + time.Nanosecond
	// One control interval covering the whole schedule: the plan's tick 0
	// window is then exactly the oracle's full evaluation window.
	interval := sched.Horizon
	plan := &query.Plan{
		Version: query.Version,
		Source:  "events",
		Ops:     []query.OpSpec{{Op: "aggregate", SLOs: templates}},
	}
	runOnce := func() []query.ResultRow {
		r, err := query.Compile(plan, interval)
		if err != nil {
			b.Fatal(err)
		}
		rows, err := r.PushTick(0, sched)
		if err != nil {
			b.Fatal(err)
		}
		return rows
	}

	want := qs.EvalStream(templates, sched, 0, end)
	rows := runOnce()
	if len(rows) != len(want) {
		b.Fatalf("query produced %d rows, oracle %d values", len(rows), len(want))
	}
	for i := range want {
		got := rows[i].Values["value"]
		if math.Float64bits(got) != math.Float64bits(want[i]) {
			b.Fatalf("objective %d (%s): query %v != oracle %v", i, templates[i].Name(), got, want[i])
		}
	}

	queryNs := minDuration(3, func() { runOnce() })
	oracleNs := minDuration(3, func() { qs.EvalStream(templates, sched, 0, end) })
	overhead := float64(queryNs) / float64(oracleNs)
	allocs, bytes := measureAllocs(3, func() { runOnce() })
	b.ReportMetric(overhead, "overhead")
	b.ReportMetric(float64(queryNs.Nanoseconds()), "query-ns")
	b.ReportMetric(float64(oracleNs.Nanoseconds()), "oracle-ns")
	recordBench("QueryVsOracle", map[string]float64{
		"tenants":       1000,
		"templates":     float64(len(templates)),
		"jobs":          float64(len(sched.Jobs)),
		"tasks":         float64(len(sched.Tasks)),
		"query_ns":      float64(queryNs.Nanoseconds()),
		"oracle_ns":     float64(oracleNs.Nanoseconds()),
		"overhead":      overhead,
		"allocs_per_op": allocs,
		"bytes_per_op":  bytes,
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runOnce()
	}
}

// Package order is the ordercontract fixture: a miniature of the
// canonical event stream (Schedule.Events, ordered by Time/Kind/Seq)
// and its consumers, correct and contract-breaking.
package order

import (
	"sort"
	"time"
)

type Event struct {
	Time time.Duration
	Kind uint8
	Seq  int
}

type Schedule struct{ events []Event }

func (s *Schedule) Events() []Event { return s.events }

func (s *Schedule) AppendEvents(buf *[]Event) []Event { return s.events }

func resort(s *Schedule) {
	ev := s.Events()
	sort.Slice(ev, func(i, j int) bool { return ev[i].Seq < ev[j].Seq }) // want `re-sorting a canonical event stream`
}

func resortDirect(s *Schedule) {
	sort.Slice(s.Events(), func(i, j int) bool { return true }) // want `re-sorting a canonical event stream`
}

func resortBuffered(s *Schedule, buf *[]Event) {
	ev := s.AppendEvents(buf)
	sort.SliceStable(ev, func(i, j int) bool { return ev[i].Time < ev[j].Time }) // want `re-sorting a canonical event stream`
}

func sortOtherSliceOK(xs []int) {
	sort.Ints(xs)
}

func concurrentAppend(s *Schedule) {
	ev := s.Events()
	done := make(chan struct{})
	go func() {
		ev = append(ev, Event{}) // want `concurrent append to canonical event stream`
		close(done)
	}()
	<-done
	_ = ev
}

func concurrentWrite(s *Schedule) {
	ev := s.Events()
	done := make(chan struct{})
	go func() {
		ev[0] = Event{} // want `write into canonical event stream`
		close(done)
	}()
	<-done
}

func goroutineLocalStreamOK(s *Schedule) {
	done := make(chan struct{})
	go func() {
		ev := s.Events()
		ev = append(ev, Event{})
		_ = ev
		close(done)
	}()
	<-done
}

func windowInclusiveTo(s *Schedule, from, to time.Duration) int {
	n := 0
	for _, e := range s.Events() {
		if e.Time >= from && e.Time <= to { // want `Event.Time <= to violates the half-open`
			n++
		}
	}
	return n
}

func windowExclusiveFrom(s *Schedule, from time.Duration) int {
	n := 0
	for _, e := range s.Events() {
		if e.Time > from { // want `Event.Time > from violates the half-open`
			n++
		}
	}
	return n
}

func windowReversedOperands(s *Schedule, to time.Duration) int {
	n := 0
	for _, e := range s.Events() {
		if to >= e.Time { // want `Event.Time <= to violates the half-open`
			n++
		}
	}
	return n
}

func windowOK(s *Schedule, from, to time.Duration) int {
	n := 0
	for _, e := range s.Events() {
		if e.Time >= from && e.Time < to {
			n++
		}
	}
	return n
}

func resortSuppressed(s *Schedule) {
	ev := s.Events()
	//tempolint:ignore ordercontract fixture: re-sort by the canonical key itself, proven identical in tests
	sort.SliceStable(ev, func(i, j int) bool { return ev[i].Time < ev[j].Time })
}

package cluster

import (
	"slices"
	"time"

	"tempo/internal/workload"
)

// This file defines the canonical event-stream view of a Schedule. The
// record view (Schedule.Jobs / Schedule.Tasks) and the event view carry the
// same information; the event view is the substrate of the incremental QS
// path (internal/qs.Accumulator), which consumes the stream once instead of
// re-scanning all records per metric. The stream is a pure function of the
// schedule: same records, same bytes of events, in the same order.

// EventKind classifies one schedule event.
type EventKind uint8

// The event kinds, in their canonical same-instant order. Ties in Time are
// broken by causality: a job submits before its tasks start, and a task
// ends before its job finishes. Task intervals are half-open [Start, End),
// so with starts ordered before ends at the same instant the running
// allocation count (sum of Delta) never goes negative, even for
// zero-length attempts.
const (
	// EventJobSubmit marks a job entering the system; it carries the job's
	// deadline (zero means none).
	EventJobSubmit EventKind = iota
	// EventTaskStart marks a container being occupied by a task attempt
	// (allocation Delta +1).
	EventTaskStart
	// EventTaskEnd marks the attempt releasing its container (allocation
	// Delta -1); it carries the attempt's outcome.
	EventTaskEnd
	// EventJobFinish marks the job's terminal record: completion, kill, or
	// horizon truncation.
	EventJobFinish
)

func (k EventKind) String() string {
	switch k {
	case EventJobSubmit:
		return "job-submit"
	case EventTaskStart:
		return "task-start"
	case EventTaskEnd:
		return "task-end"
	case EventJobFinish:
		return "job-finish"
	}
	return "unknown"
}

// Event is one element of a schedule's canonical event stream. Together the
// four kinds carry every field of the record view, so the stream can be
// replayed into an identical Schedule (see ReplaySchedule).
type Event struct {
	// Time is the virtual time of the event.
	Time time.Duration
	// Kind selects which of the remaining fields are meaningful.
	Kind EventKind
	// Seq is the index of the underlying record: into Schedule.Jobs for job
	// events, into Schedule.Tasks for task events. Together with Kind it
	// makes every event unique, which is what makes the stream's order
	// total.
	Seq int
	// Tenant and JobID identify the owner on every kind.
	Tenant string
	JobID  string
	// Delta is the container-allocation change: +1 on EventTaskStart, -1 on
	// EventTaskEnd, 0 on job events. Deltas over any completed stream sum
	// to zero.
	Delta int
	// Deadline is meaningful on EventJobSubmit (zero means none).
	Deadline time.Duration
	// Completed and Killed are meaningful on EventJobFinish.
	Completed bool
	Killed    bool
	// TaskKind and Attempt are meaningful on task events.
	TaskKind workload.TaskKind
	Attempt  int
	// Outcome is meaningful on EventTaskEnd.
	Outcome TaskOutcome
}

// EventLess is the canonical strict ordering of the stream: by Time, then
// by Kind (submit < task-start < task-end < job-finish), then by Seq. It is
// a total order because (Kind, Seq) is unique per event.
func EventLess(a, b *Event) bool {
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	return a.Seq < b.Seq
}

// EventBuf is a reusable buffer set for repeated event-stream extraction:
// AppendEvents serves the stream from the buffer's storage, so consumers
// that extract many streams (what-if scoring, per-interval accumulators)
// stop allocating one event array plus four index arrays per schedule.
// The zero value is ready to use.
type EventBuf struct {
	events []Event
	idx    []int32
}

// Events returns the schedule as its canonical ordered event stream: one
// EventJobSubmit/EventJobFinish pair per job record and one
// EventTaskStart/EventTaskEnd pair per task attempt, sorted by EventLess.
// Every job record emits a finish event even when the job did not complete
// (the record's Finish then marks the kill or horizon-truncation time), so
// the stream always carries the full record view.
func (s *Schedule) Events() []Event {
	return s.AppendEvents(&EventBuf{})
}

// AppendEvents is Events serving from a reusable buffer: the returned
// stream is valid until buf's next use. The bytes of the stream are
// identical to Events'.
//
// The stream is assembled as a four-way merge of per-kind cursors over
// index-sorted record views rather than one big sort: each Event (a large,
// pointer-carrying struct) is written exactly once, and the index sorts
// are nearly no-ops on emulator output, whose Jobs and Tasks already come
// in submit and start order.
func (s *Schedule) AppendEvents(buf *EventBuf) []Event {
	nj, nt := len(s.Jobs), len(s.Tasks)
	if need := 2*nj + 2*nt; cap(buf.idx) < need {
		buf.idx = make([]int32, need)
	}
	idx := buf.idx[:2*nj+2*nt]
	submitIdx := sortedIndexInto(idx[0:nj], func(i, j int32) bool {
		a, b := s.Jobs[i].Submit, s.Jobs[j].Submit
		return a < b || (a == b && i < j)
	})
	finishIdx := sortedIndexInto(idx[nj:2*nj], func(i, j int32) bool {
		a, b := s.Jobs[i].Finish, s.Jobs[j].Finish
		return a < b || (a == b && i < j)
	})
	startIdx := sortedIndexInto(idx[2*nj:2*nj+nt], func(i, j int32) bool {
		a, b := s.Tasks[i].Start, s.Tasks[j].Start
		return a < b || (a == b && i < j)
	})
	endIdx := sortedIndexInto(idx[2*nj+nt:], func(i, j int32) bool {
		a, b := s.Tasks[i].End, s.Tasks[j].End
		return a < b || (a == b && i < j)
	})

	if need := 2*nj + 2*nt; cap(buf.events) < need {
		buf.events = make([]Event, 0, need)
	}
	events := buf.events[:0]
	total := 2*nj + 2*nt
	var js, jf, ts, te int
	for len(events) < total {
		bestKind := EventKind(255)
		var bestTime time.Duration
		var bestSeq int32
		consider := func(kind EventKind, at time.Duration, seq int32) {
			if bestKind == 255 || at < bestTime || (at == bestTime && kind < bestKind) {
				bestKind, bestTime, bestSeq = kind, at, seq
			}
		}
		if js < nj {
			i := submitIdx[js]
			consider(EventJobSubmit, s.Jobs[i].Submit, i)
		}
		if ts < nt {
			i := startIdx[ts]
			consider(EventTaskStart, s.Tasks[i].Start, i)
		}
		if te < nt {
			i := endIdx[te]
			consider(EventTaskEnd, s.Tasks[i].End, i)
		}
		if jf < nj {
			i := finishIdx[jf]
			consider(EventJobFinish, s.Jobs[i].Finish, i)
		}
		switch bestKind {
		case EventJobSubmit:
			j := &s.Jobs[bestSeq]
			events = append(events, Event{
				Time: j.Submit, Kind: EventJobSubmit, Seq: int(bestSeq),
				Tenant: j.Tenant, JobID: j.ID, Deadline: j.Deadline,
			})
			js++
		case EventTaskStart:
			t := &s.Tasks[bestSeq]
			events = append(events, Event{
				Time: t.Start, Kind: EventTaskStart, Seq: int(bestSeq),
				Tenant: t.Tenant, JobID: t.JobID, Delta: +1,
				TaskKind: t.Kind, Attempt: t.Attempt,
			})
			ts++
		case EventTaskEnd:
			t := &s.Tasks[bestSeq]
			events = append(events, Event{
				Time: t.End, Kind: EventTaskEnd, Seq: int(bestSeq),
				Tenant: t.Tenant, JobID: t.JobID, Delta: -1,
				TaskKind: t.Kind, Attempt: t.Attempt, Outcome: t.Outcome,
			})
			te++
		case EventJobFinish:
			j := &s.Jobs[bestSeq]
			events = append(events, Event{
				Time: j.Finish, Kind: EventJobFinish, Seq: int(bestSeq),
				Tenant: j.Tenant, JobID: j.ID, Completed: j.Completed, Killed: j.Killed,
			})
			jf++
		}
	}
	buf.events = events
	return events
}

// sortedIndexInto fills idx with [0, len(idx)) sorted by the comparator.
// Ties never occur: every less function falls back to index order.
func sortedIndexInto(idx []int32, less func(i, j int32) bool) []int32 {
	for i := range idx {
		idx[i] = int32(i)
	}
	slices.SortFunc(idx, func(a, b int32) int {
		if less(a, b) {
			return -1
		}
		return 1
	})
	return idx
}

// ReplaySchedule reconstructs a Schedule from its event stream. Capacity
// and Horizon are not part of the stream and are supplied by the caller.
// For a stream produced by Events, the result is deeply equal to the
// original schedule.
func ReplaySchedule(capacity int, horizon time.Duration, events []Event) *Schedule {
	s := &Schedule{Capacity: capacity, Horizon: horizon}
	maxJob, maxTask := -1, -1
	for i := range events {
		switch events[i].Kind {
		case EventJobSubmit, EventJobFinish:
			if events[i].Seq > maxJob {
				maxJob = events[i].Seq
			}
		case EventTaskStart, EventTaskEnd:
			if events[i].Seq > maxTask {
				maxTask = events[i].Seq
			}
		}
	}
	if maxJob >= 0 {
		s.Jobs = make([]JobRecord, maxJob+1)
	}
	if maxTask >= 0 {
		s.Tasks = make([]TaskRecord, maxTask+1)
	}
	for i := range events {
		ev := &events[i]
		switch ev.Kind {
		case EventJobSubmit:
			j := &s.Jobs[ev.Seq]
			j.ID, j.Tenant = ev.JobID, ev.Tenant
			j.Submit, j.Deadline = ev.Time, ev.Deadline
		case EventJobFinish:
			j := &s.Jobs[ev.Seq]
			j.ID, j.Tenant = ev.JobID, ev.Tenant
			j.Finish, j.Completed, j.Killed = ev.Time, ev.Completed, ev.Killed
		case EventTaskStart:
			t := &s.Tasks[ev.Seq]
			t.JobID, t.Tenant = ev.JobID, ev.Tenant
			t.Kind, t.Attempt, t.Start = ev.TaskKind, ev.Attempt, ev.Time
		case EventTaskEnd:
			t := &s.Tasks[ev.Seq]
			t.JobID, t.Tenant = ev.JobID, ev.Tenant
			t.Kind, t.Attempt = ev.TaskKind, ev.Attempt
			t.End, t.Outcome = ev.Time, ev.Outcome
		}
	}
	return s
}

// FNV-1a 64-bit parameters (hash/fnv's), inlined so fingerprinting a
// schedule on the what-if hot path does not allocate a hash.Hash64.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvUint64 absorbs v's little-endian bytes — the same byte sequence
// binary.LittleEndian.PutUint64 + Write fed hash/fnv, so fingerprints are
// unchanged across the inlining.
func fnvUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * fnvPrime64
		v >>= 8
	}
	return h
}

func fnvString(h uint64, s string) uint64 {
	h = fnvUint64(h, uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

func fnvBool(h uint64, v bool) uint64 {
	if v {
		return fnvUint64(h, 1)
	}
	return fnvUint64(h, 0)
}

// Fingerprint returns a 64-bit FNV-1a digest of the schedule's full record
// view (capacity, horizon, every job and task field). Schedules with equal
// fingerprints are almost certainly identical; callers that must be exact
// (the what-if evaluation cache) verify with Equal before trusting a match.
func (s *Schedule) Fingerprint() uint64 {
	h := uint64(fnvOffset64)
	h = fnvUint64(h, uint64(s.Capacity))
	h = fnvUint64(h, uint64(s.Horizon))
	h = fnvUint64(h, uint64(len(s.Jobs)))
	for i := range s.Jobs {
		j := &s.Jobs[i]
		h = fnvString(h, j.ID)
		h = fnvString(h, j.Tenant)
		h = fnvUint64(h, uint64(j.Submit))
		h = fnvUint64(h, uint64(j.Finish))
		h = fnvUint64(h, uint64(j.Deadline))
		h = fnvBool(h, j.Completed)
		h = fnvBool(h, j.Killed)
	}
	h = fnvUint64(h, uint64(len(s.Tasks)))
	for i := range s.Tasks {
		t := &s.Tasks[i]
		h = fnvString(h, t.JobID)
		h = fnvString(h, t.Tenant)
		h = fnvUint64(h, uint64(t.Kind))
		h = fnvUint64(h, uint64(t.Attempt))
		h = fnvUint64(h, uint64(t.Start))
		h = fnvUint64(h, uint64(t.End))
		h = fnvUint64(h, uint64(t.Outcome))
	}
	return h
}

// Equal reports whether two schedules have identical record views. It is
// the exact check behind Fingerprint matches.
func (s *Schedule) Equal(o *Schedule) bool {
	if s == nil || o == nil {
		return s == o
	}
	if s.Capacity != o.Capacity || s.Horizon != o.Horizon ||
		len(s.Jobs) != len(o.Jobs) || len(s.Tasks) != len(o.Tasks) {
		return false
	}
	for i := range s.Jobs {
		if s.Jobs[i] != o.Jobs[i] {
			return false
		}
	}
	for i := range s.Tasks {
		if s.Tasks[i] != o.Tasks[i] {
			return false
		}
	}
	return true
}

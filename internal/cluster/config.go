// Package cluster implements the multi-tenant Resource Manager substrate
// Tempo tunes: a container-based shared-nothing cluster with per-tenant
// queues governed by resource shares, min/max resource limits, and
// two-level kill-based preemption timeouts (§3.2 of the paper).
//
// The same event-driven scheduler serves as both the "production cluster"
// (with a seeded noise model injecting duration jitter, task failures, and
// user job kills) and Tempo's fast Schedule Predictor (noise disabled).
// Prediction advances state only at task submission, finish, and potential
// preemption instants — the time-warp style of §7.2.
package cluster

import (
	"fmt"
	"math"
	"sort"
	"time"

	"tempo/internal/linalg"
)

// TenantConfig is the per-tenant slice of the RM configuration space
// described in §3.2.
type TenantConfig struct {
	// Weight is the tenant's resource share relative to other tenants.
	Weight float64 `json:"weight"`
	// MinShare is the minimum number of containers the tenant is entitled
	// to whenever it has demand.
	MinShare int `json:"min_share"`
	// MaxShare caps the tenant's containers; 0 means unlimited.
	MaxShare int `json:"max_share"`
	// SharePreemptTimeout is how long the tenant tolerates running below
	// its fair share (while having pending tasks) before the RM kills
	// recently launched tasks of over-share tenants. Zero disables this
	// preemption level.
	SharePreemptTimeout time.Duration `json:"share_preempt_timeout"`
	// MinSharePreemptTimeout is the more critical level: how long the
	// tenant tolerates running below MinShare. Zero disables it.
	MinSharePreemptTimeout time.Duration `json:"min_share_preempt_timeout"`
}

// Config is a complete RM configuration: the cluster capacity and every
// tenant's parameters. This is the vector x that Tempo optimizes.
type Config struct {
	// TotalContainers is the number of containers the RM can allocate at
	// any instant.
	TotalContainers int `json:"total_containers"`
	// Tenants maps tenant (queue) name to its parameters. Tenants absent
	// from the map run with DefaultTenantConfig.
	Tenants map[string]TenantConfig `json:"tenants"`
}

// DefaultTenantConfig is used for tenants the configuration does not name:
// weight 1, no floors or ceilings, preemption disabled.
var DefaultTenantConfig = TenantConfig{Weight: 1}

// Tenant returns the configuration for the named tenant, falling back to
// DefaultTenantConfig.
func (c *Config) Tenant(name string) TenantConfig {
	if tc, ok := c.Tenants[name]; ok {
		return tc
	}
	return DefaultTenantConfig
}

// Clone returns a deep copy of the configuration.
func (c Config) Clone() Config {
	out := c
	out.Tenants = make(map[string]TenantConfig, len(c.Tenants))
	for k, v := range c.Tenants {
		out.Tenants[k] = v
	}
	return out
}

// Equal reports whether two configurations are identical: same capacity
// and the same explicit tenant set with equal parameters. It is the exact
// check behind Fingerprint matches in the what-if search cache.
func (c Config) Equal(o Config) bool {
	if c.TotalContainers != o.TotalContainers || len(c.Tenants) != len(o.Tenants) {
		return false
	}
	// No early exit: the full scan keeps the predicate trivially
	// independent of map iteration order (determinism lint scope).
	eq := true
	for k, v := range c.Tenants {
		if ov, ok := o.Tenants[k]; !ok || v != ov {
			eq = false
		}
	}
	return eq
}

// Fingerprint returns a 64-bit digest of the configuration. Per-tenant
// FNV-1a hashes are XOR-combined so the result is independent of map
// iteration order. Equal fingerprints are almost certainly equal configs;
// callers that must be exact (the cross-tick search cache) verify with
// Equal before trusting a match.
func (c Config) Fingerprint() uint64 {
	h := fnvUint64(fnvOffset64, uint64(c.TotalContainers))
	h = fnvUint64(h, uint64(len(c.Tenants)))
	var mix uint64
	for name, tc := range c.Tenants {
		th := fnvString(fnvOffset64, name)
		th = fnvUint64(th, math.Float64bits(tc.Weight))
		th = fnvUint64(th, uint64(tc.MinShare))
		th = fnvUint64(th, uint64(tc.MaxShare))
		th = fnvUint64(th, uint64(tc.SharePreemptTimeout))
		th = fnvUint64(th, uint64(tc.MinSharePreemptTimeout))
		mix ^= th
	}
	return fnvUint64(h, mix)
}

// Validate checks capacity and per-tenant parameter sanity.
func (c *Config) Validate() error {
	if c.TotalContainers <= 0 {
		return fmt.Errorf("cluster: non-positive capacity %d", c.TotalContainers)
	}
	// Map iteration order is random; report the lexically smallest
	// offending tenant so the same bad config always yields the same
	// error, without sorting (Validate runs on every RunInto).
	bad := ""
	for name, tc := range c.Tenants {
		if bad != "" && name >= bad {
			continue
		}
		if tc.Weight <= 0 || tc.MinShare < 0 || tc.MaxShare < 0 ||
			(tc.MaxShare > 0 && tc.MinShare > tc.MaxShare) ||
			tc.SharePreemptTimeout < 0 || tc.MinSharePreemptTimeout < 0 {
			bad = name
		}
	}
	if bad != "" {
		tc := c.Tenants[bad]
		switch {
		case tc.Weight <= 0:
			return fmt.Errorf("cluster: tenant %s has non-positive weight %g", bad, tc.Weight)
		case tc.MinShare < 0 || tc.MaxShare < 0:
			return fmt.Errorf("cluster: tenant %s has negative share limit", bad)
		case tc.MaxShare > 0 && tc.MinShare > tc.MaxShare:
			return fmt.Errorf("cluster: tenant %s min share %d exceeds max share %d", bad, tc.MinShare, tc.MaxShare)
		default:
			return fmt.Errorf("cluster: tenant %s has negative preemption timeout", bad)
		}
	}
	return nil
}

// WithSubTenants returns a copy of the configuration in which the parent
// tenant's entry is replaced by one entry per sub-queue. The parent's
// weight and limits are split evenly — the hierarchical-tenant workaround
// §10 describes for attaching fine-grained SLOs to workloads of a single
// tenant (as in the Hadoop Capacity Scheduler). Preemption timeouts are
// inherited unchanged.
func (c Config) WithSubTenants(parent string, subs []string) Config {
	out := c.Clone()
	if len(subs) == 0 {
		return out
	}
	pc := out.Tenant(parent)
	delete(out.Tenants, parent)
	n := len(subs)
	for i, sub := range subs {
		tc := pc
		tc.Weight = pc.Weight / float64(n)
		// Distribute remainder containers to the first sub-queues so the
		// totals are preserved.
		tc.MinShare = pc.MinShare / n
		if i < pc.MinShare%n {
			tc.MinShare++
		}
		if pc.MaxShare > 0 {
			tc.MaxShare = pc.MaxShare / n
			if tc.MaxShare < 1 {
				tc.MaxShare = 1
			}
			if tc.MinShare > tc.MaxShare {
				tc.MinShare = tc.MaxShare
			}
		}
		out.Tenants[sub] = tc
	}
	return out
}

// Space describes the box-constrained, normalized configuration space the
// optimizer explores. Each tenant contributes five coordinates — weight,
// min share, max share, share-level preemption timeout, min-share-level
// preemption timeout — each mapped affinely to [0, 1]. This realizes the
// paper's "normalized ℓ2-norm" trust-region metric: distances in the unit
// cube are comparable across parameters with wildly different units.
type Space struct {
	// Capacity is the cluster size every decoded Config carries.
	Capacity int
	// TenantNames fixes the coordinate order; must be sorted and nonempty.
	TenantNames []string
	// WeightRange bounds tenant weights.
	WeightRange [2]float64
	// MinShareFrac and MaxShareFrac bound the min/max limits as fractions
	// of capacity.
	MinShareFrac [2]float64
	MaxShareFrac [2]float64
	// ShareTimeoutRange and MinTimeoutRange bound the two preemption
	// timeouts. The upper end should exceed the workload's typical task
	// duration so "effectively disabled" is representable.
	ShareTimeoutRange [2]time.Duration
	MinTimeoutRange   [2]time.Duration
}

// paramsPerTenant is the number of tunable RM parameters per tenant (§3.2:
// share, two limits, two preemption timeouts).
const paramsPerTenant = 5

// DefaultSpace returns a Space with sensible bounds for the given cluster
// capacity and tenants. Tenant names are sorted for coordinate stability.
func DefaultSpace(capacity int, tenants []string) *Space {
	names := append([]string(nil), tenants...)
	sort.Strings(names)
	return &Space{
		Capacity:          capacity,
		TenantNames:       names,
		WeightRange:       [2]float64{0.1, 10},
		MinShareFrac:      [2]float64{0, 0.5},
		MaxShareFrac:      [2]float64{0.1, 1},
		ShareTimeoutRange: [2]time.Duration{15 * time.Second, 30 * time.Minute},
		MinTimeoutRange:   [2]time.Duration{5 * time.Second, 15 * time.Minute},
	}
}

// Dim returns the dimensionality of the normalized space.
func (s *Space) Dim() int { return paramsPerTenant * len(s.TenantNames) }

// Encode maps a Config into the normalized [0,1]^Dim cube. Tenants missing
// from cfg encode as DefaultTenantConfig. Values outside the bounds clamp.
func (s *Space) Encode(cfg Config) linalg.Vector {
	x := linalg.NewVector(s.Dim())
	for i, name := range s.TenantNames {
		tc := cfg.Tenant(name)
		base := i * paramsPerTenant
		x[base+0] = normalize(tc.Weight, s.WeightRange[0], s.WeightRange[1])
		x[base+1] = normalize(float64(tc.MinShare), s.MinShareFrac[0]*float64(s.Capacity), s.MinShareFrac[1]*float64(s.Capacity))
		maxShare := tc.MaxShare
		if maxShare == 0 {
			maxShare = s.Capacity
		}
		x[base+2] = normalize(float64(maxShare), s.MaxShareFrac[0]*float64(s.Capacity), s.MaxShareFrac[1]*float64(s.Capacity))
		x[base+3] = normalize(float64(tc.SharePreemptTimeout), float64(s.ShareTimeoutRange[0]), float64(s.ShareTimeoutRange[1]))
		x[base+4] = normalize(float64(tc.MinSharePreemptTimeout), float64(s.MinTimeoutRange[0]), float64(s.MinTimeoutRange[1]))
	}
	return x
}

// Decode maps a point of the normalized cube back to a valid Config.
// Coordinates are clamped to [0,1] first; MinShare is clamped below
// MaxShare so every decoded configuration validates.
func (s *Space) Decode(x linalg.Vector) Config {
	if len(x) != s.Dim() {
		panic(fmt.Sprintf("cluster: decoding vector of length %d into space of dim %d", len(x), s.Dim()))
	}
	cfg := Config{TotalContainers: s.Capacity, Tenants: make(map[string]TenantConfig, len(s.TenantNames))}
	for i, name := range s.TenantNames {
		base := i * paramsPerTenant
		tc := TenantConfig{
			Weight:                 denormalize(x[base+0], s.WeightRange[0], s.WeightRange[1]),
			MinShare:               int(math.Round(denormalize(x[base+1], s.MinShareFrac[0]*float64(s.Capacity), s.MinShareFrac[1]*float64(s.Capacity)))),
			MaxShare:               int(math.Round(denormalize(x[base+2], s.MaxShareFrac[0]*float64(s.Capacity), s.MaxShareFrac[1]*float64(s.Capacity)))),
			SharePreemptTimeout:    time.Duration(denormalize(x[base+3], float64(s.ShareTimeoutRange[0]), float64(s.ShareTimeoutRange[1]))),
			MinSharePreemptTimeout: time.Duration(denormalize(x[base+4], float64(s.MinTimeoutRange[0]), float64(s.MinTimeoutRange[1]))),
		}
		if tc.MaxShare < 1 {
			tc.MaxShare = 1
		}
		if tc.MinShare > tc.MaxShare {
			tc.MinShare = tc.MaxShare
		}
		if tc.MinShare < 0 {
			tc.MinShare = 0
		}
		cfg.Tenants[name] = tc
	}
	return cfg
}

func normalize(v, lo, hi float64) float64 {
	if hi <= lo {
		return 0
	}
	u := (v - lo) / (hi - lo)
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}

func denormalize(u, lo, hi float64) float64 {
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	return lo + u*(hi-lo)
}

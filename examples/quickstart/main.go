// Quickstart: declare SLOs for two tenants, point Tempo at an (emulated)
// cluster, and let the control loop tune the Resource Manager.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"tempo"
)

func main() {
	// 1. Describe the tenants' workloads. In production this is recorded
	// history; here we use the library's statistical profiles: a
	// deadline-driven ETL-like tenant and a best-effort analyst tenant.
	abc := tempo.CompanyABC(0.8)
	profiles := []tempo.TenantProfile{abc[5] /* ETL */, abc[0] /* BI */}

	// 2. Declare the SLOs with QS templates: at most 5% of ETL jobs may
	// miss their deadlines (with 25% slack), and BI's average response
	// time should be as low as possible (best-effort: no fixed target).
	templates := []tempo.Template{
		tempo.Template{Queue: "ETL", Metric: tempo.DeadlineViolations, Slack: 0.25}.WithTarget(0.05),
		{Queue: "BI", Metric: tempo.AvgResponseTime},
	}

	// 3. Record one interval of workload to replay in the What-if Model.
	const interval = time.Hour
	trace, err := tempo.Generate(profiles, tempo.GenerateOptions{Horizon: interval, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	model, err := tempo.NewWhatIfFromTrace(templates, trace)
	if err != nil {
		log.Fatal(err)
	}
	model.Horizon = interval
	// Candidate scoring fans out over all CPUs; results are identical to
	// sequential evaluation, it just converges in less wall-clock time.
	model.Parallelism = tempo.DefaultParallelism()

	// 4. The starting RM configuration a DBA might write: protect ETL,
	// cap BI hard.
	const capacity = 40
	initial := tempo.ClusterConfig{
		TotalContainers: capacity,
		Tenants: map[string]tempo.TenantConfig{
			"ETL": {Weight: 3, MinShare: 16, MinSharePreemptTimeout: time.Minute},
			"BI":  {Weight: 1, MaxShare: 8},
		},
	}

	// 5. Wire the control loop against a noisy emulated cluster that
	// replays the same workload each interval.
	ctl, err := tempo.NewController(tempo.ControllerConfig{
		Space:     tempo.DefaultSpace(capacity, []string{"ETL", "BI"}),
		Templates: templates,
		Model:     model,
		Environment: &tempo.ReplayEnvironment{
			Trace: trace,
			Noise: tempo.DefaultNoise(11),
		},
		Interval:   interval,
		Candidates: 5,
	}, initial)
	if err != nil {
		log.Fatal(err)
	}

	// 6. Run a few control-loop iterations and watch the SLOs.
	fmt.Println("iter  ETL deadline-miss  BI avg response (s)")
	for i := 0; i < 8; i++ {
		it, err := ctl.Step()
		if err != nil {
			log.Fatal(err)
		}
		marker := ""
		if it.Switched {
			marker = "  <- new RM config"
		}
		if it.Reverted {
			marker = "  <- reverted"
		}
		fmt.Printf("%4d  %17.3f  %19.1f%s\n", it.Index, it.Observed[0], it.Observed[1], marker)
	}

	final := ctl.Current()
	fmt.Println("\nfinal RM configuration:")
	for _, name := range []string{"ETL", "BI"} {
		tc := final.Tenant(name)
		fmt.Printf("  %-4s weight=%.2f min=%d max=%d\n", name, tc.Weight, tc.MinShare, tc.MaxShare)
	}
}

package core

import (
	"encoding/json"
	"reflect"
	"testing"

	"tempo/internal/linalg"
)

// stayStrategy is a minimal non-PALD Strategy: it proposes the current
// point unchanged. Used to check snapshotting refuses custom strategies.
type stayStrategy struct{}

func (stayStrategy) Name() string                           { return "stay" }
func (stayStrategy) Observe(linalg.Vector, []float64) error { return nil }
func (stayStrategy) Propose(x linalg.Vector, _ []float64, n int) ([]linalg.Vector, error) {
	out := make([]linalg.Vector, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, x.Clone())
	}
	return out, nil
}

// TestControllerSnapshotRoundTrip runs the two-tenant control loop
// halfway, snapshots, restores the snapshot (through JSON, as the real
// persistence path does) into a freshly built controller, and checks the
// remaining iterations of both controllers are identical — configs,
// observed and predicted QS vectors, switch/revert decisions. This is the
// in-memory core of the crash-recovery guarantee: same spec + snapshot =
// same trajectory.
func TestControllerSnapshotRoundTrip(t *testing.T) {
	const total, half = 8, 4
	seed := int64(11)

	run := func(steps int) *Controller {
		cfg, initial := twoTenantSetup(t, seed)
		c, err := NewController(cfg, initial)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < steps; i++ {
			if _, err := c.Step(); err != nil {
				t.Fatal(err)
			}
		}
		return c
	}

	ref := run(total)
	mid := run(half)

	snap, err := mid.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var decoded ControllerState
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}

	cfg, initial := twoTenantSetup(t, seed)
	restored, err := NewController(cfg, initial)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Restore(&decoded); err != nil {
		t.Fatal(err)
	}
	for i := half; i < total; i++ {
		if _, err := restored.Step(); err != nil {
			t.Fatal(err)
		}
	}

	got, want := restored.History(), ref.History()
	if len(got) != len(want) {
		t.Fatalf("restored history has %d iterations, want %d", len(got), len(want))
	}
	for i := range want {
		// Search stats are cache-temperature diagnostics, not trajectory: a
		// restored controller re-drives the identical decisions from a cold
		// cross-tick cache, so its warm-start/simulation tallies legitimately
		// differ from the uninterrupted run's. Everything the trajectory
		// consists of (config, observations, predictions, switches) must
		// still match exactly.
		got[i].Search, want[i].Search = nil, nil
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("iteration %d diverges after restore:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
	if !reflect.DeepEqual(restored.Current(), ref.Current()) {
		t.Errorf("final configuration diverges:\n got %+v\nwant %+v", restored.Current(), ref.Current())
	}
	if !reflect.DeepEqual(restored.Targets(), ref.Targets()) {
		t.Errorf("targets diverge:\n got %+v\nwant %+v", restored.Targets(), ref.Targets())
	}
}

// TestControllerSnapshotBeforeFirstStep locks the nil-scales distinction:
// a snapshot taken before any observation restores to a controller that
// still freezes its normalization scales at the first Step.
func TestControllerSnapshotBeforeFirstStep(t *testing.T) {
	seed := int64(3)
	cfg, initial := twoTenantSetup(t, seed)
	c, err := NewController(cfg, initial)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Scales != nil {
		t.Fatalf("pre-step snapshot has scales %v, want none", snap.Scales)
	}

	cfg2, initial2 := twoTenantSetup(t, seed)
	restored, err := NewController(cfg2, initial2)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Restore(snap); err != nil {
		t.Fatal(err)
	}
	itA, err := restored.Step()
	if err != nil {
		t.Fatal(err)
	}
	cfg3, initial3 := twoTenantSetup(t, seed)
	fresh, err := NewController(cfg3, initial3)
	if err != nil {
		t.Fatal(err)
	}
	itB, err := fresh.Step()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(itA, itB) {
		t.Errorf("first step after empty-state restore diverges:\n got %+v\nwant %+v", itA, itB)
	}
}

// TestControllerRestoreValidates rejects shape mismatches and custom
// strategies.
func TestControllerRestoreValidates(t *testing.T) {
	cfg, initial := twoTenantSetup(t, 5)
	c, err := NewController(cfg, initial)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Restore(nil); err == nil {
		t.Error("nil state accepted")
	}
	snap, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	bad := *snap
	bad.CurrentX = []float64{1}
	if err := c.Restore(&bad); err == nil {
		t.Error("wrong-dimension state accepted")
	}
	bad = *snap
	bad.Targets = bad.Targets[:1]
	if err := c.Restore(&bad); err == nil {
		t.Error("wrong target count accepted")
	}
	bad = *snap
	bad.Optimizer = nil
	if err := c.Restore(&bad); err == nil {
		t.Error("missing optimizer state accepted")
	}

	// Custom strategies cannot snapshot.
	custom := cfg
	custom.Strategy = stayStrategy{}
	cc, err := NewController(custom, initial)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cc.Snapshot(); err == nil {
		t.Error("custom-strategy snapshot accepted")
	}
	if err := cc.Restore(snap); err == nil {
		t.Error("custom-strategy restore accepted")
	}
}

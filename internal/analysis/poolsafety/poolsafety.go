// Package poolsafety flags violations of the repo's pooled-arena
// ownership contracts, which only runtime sweeps (the pooled-determinism
// goldens, the scratch-pool race hammer) would otherwise catch:
//
//   - escape without Detach: a *Schedule returned by (*cluster.Sim).
//     RunInto borrows the arena's backing arrays, valid only until the
//     arena's next run. Returning it, storing it into a field, map, or
//     package variable, or sending it on a channel is flagged unless
//     Detach was called on that Sim first (transferring ownership).
//   - use after Put: any value used after being handed back to a
//     sync.Pool via Put — the pool may already have given it to another
//     goroutine.
//
// The analysis is function-local and ordered by source position: a
// Detach (or re-Get) textually before the escape (or use) clears it,
// which matches every legitimate pattern in the tree.
package poolsafety

import (
	"go/ast"
	"go/token"
	"go/types"

	"tempo/internal/analysis"
)

// Analyzer is the poolsafety analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "poolsafety",
	Doc:  "flag pooled-arena schedules escaping without Detach and sync.Pool values used after Put",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// borrowed tracks one variable bound to a RunInto result.
type borrowed struct {
	obj  types.Object // the schedule variable
	sim  types.Object // the arena it borrows from (nil if receiver isn't a plain ident)
	call *ast.CallExpr
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo

	// Pass 1: collect RunInto bindings, Detach positions per arena, and
	// Put positions per pooled object.
	var borrows []*borrowed
	detachPos := map[types.Object][]ast.Node{} // sim object -> Detach calls
	type putRecord struct {
		obj  types.Object
		call *ast.CallExpr
	}
	var puts []putRecord
	// A deferred Put runs at function (or goroutine-closure) exit, after
	// every use in the body; it can never be a use-after-Put source.
	deferred := map[*ast.CallExpr]bool{}
	ast.Inspect(fd, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferred[d.Call] = true
		}
		return true
	})
	ast.Inspect(fd, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok {
					continue
				}
				recv, ok := analysis.IsMethodCall(info, call, "Sim", "RunInto")
				if !ok {
					continue
				}
				// Multi-value: sched, err := sm.RunInto(...). The
				// schedule is the first LHS.
				var lhs ast.Expr
				if len(n.Rhs) == 1 && len(n.Lhs) >= 1 {
					lhs = n.Lhs[0]
				} else if i < len(n.Lhs) {
					lhs = n.Lhs[i]
				}
				if lhs == nil {
					continue
				}
				if obj := analysis.ObjectOf(info, lhs); obj != nil {
					borrows = append(borrows, &borrowed{obj: obj, sim: analysis.ObjectOf(info, recv), call: call})
				}
			}
		case *ast.CallExpr:
			if recv, ok := analysis.IsMethodCall(info, n, "Sim", "Detach"); ok {
				if simObj := analysis.ObjectOf(info, recv); simObj != nil {
					detachPos[simObj] = append(detachPos[simObj], n)
				}
			}
			if recv, ok := analysis.IsMethodCall(info, n, "Pool", "Put"); ok {
				if deferred[n] || !isSyncPool(info, recv) {
					return true
				}
				if len(n.Args) == 1 {
					if obj := analysis.ObjectOf(info, n.Args[0]); obj != nil {
						puts = append(puts, putRecord{obj: obj, call: n})
					}
				}
			}
		}
		return true
	})

	if len(borrows) > 0 {
		checkEscapes(pass, fd, borrows, detachPos)
	}
	for _, p := range puts {
		checkUseAfterPut(pass, fd, p.obj, p.call)
	}
}

func isSyncPool(info *types.Info, recv ast.Expr) bool {
	tv, ok := info.Types[recv]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == "Pool" && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync"
}

// detachedBefore reports whether Detach was called on b's arena at a
// position before pos. A borrow whose receiver was not a plain
// identifier (for example sm.inner.RunInto) is treated as never
// detached — conservative, and not a pattern the tree uses.
func detachedBefore(b *borrowed, detachPos map[types.Object][]ast.Node, pos ast.Node) bool {
	if b.sim == nil {
		return false
	}
	for _, d := range detachPos[b.sim] {
		if d.Pos() > b.call.End() && d.Pos() < pos.Pos() {
			return true
		}
	}
	return false
}

func checkEscapes(pass *analysis.Pass, fd *ast.FuncDecl, borrows []*borrowed, detachPos map[types.Object][]ast.Node) {
	info := pass.TypesInfo
	find := func(e ast.Expr) *borrowed {
		obj := analysis.ObjectOf(info, e)
		if obj == nil {
			return nil
		}
		for _, b := range borrows {
			if b.obj == obj {
				return b
			}
		}
		return nil
	}
	ast.Inspect(fd, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if b := find(res); b != nil && n.Pos() > b.call.Pos() && !detachedBefore(b, detachPos, n) {
					pass.Reportf(n.Pos(), "returning schedule %q borrowed from arena %q without Detach: its backing arrays are recycled by the arena's next RunInto", b.obj.Name(), simName(b))
				}
			}
		case *ast.SendStmt:
			if b := find(n.Value); b != nil && n.Pos() > b.call.Pos() && !detachedBefore(b, detachPos, n) {
				pass.Reportf(n.Pos(), "sending schedule %q borrowed from arena %q without Detach: the receiver outlives the arena's next RunInto", b.obj.Name(), simName(b))
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				b := find(rhs)
				if b == nil || len(n.Lhs) <= i {
					continue
				}
				if !escapingLHS(info, n.Lhs[min(i, len(n.Lhs)-1)]) {
					continue
				}
				if n.Pos() > b.call.Pos() && !detachedBefore(b, detachPos, n) {
					pass.Reportf(n.Pos(), "storing schedule %q borrowed from arena %q without Detach: the store outlives the arena's next RunInto", b.obj.Name(), simName(b))
				}
			}
		}
		return true
	})
}

// escapingLHS reports whether assigning to lhs publishes the value
// beyond the local frame: a struct field, a map or slice element, a
// dereference, or a package-level variable.
func escapingLHS(info *types.Info, lhs ast.Expr) bool {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.Ident:
		obj := info.Uses[l]
		if obj == nil {
			obj = info.Defs[l]
		}
		if v, ok := obj.(*types.Var); ok {
			// Package-level variable: its scope is the package scope.
			return v.Parent() == v.Pkg().Scope()
		}
	}
	return false
}

func simName(b *borrowed) string {
	if b.sim != nil {
		return b.sim.Name()
	}
	return "?"
}

// checkUseAfterPut flags identifier uses of obj positioned after the
// Put call, unless the variable is rebound first (x = pool.Get()
// again). When the Put sits inside a loop, only uses after the loop are
// flagged — a textually later use inside the loop body may belong to an
// earlier iteration... but a textually earlier use in the next
// iteration is exactly as unsafe, so the rebinding rule still applies:
// a loop that Puts and keeps using the value without re-Getting it is
// flagged at the loop's first use site.
func checkUseAfterPut(pass *analysis.Pass, fd *ast.FuncDecl, obj types.Object, put *ast.CallExpr) {
	info := pass.TypesInfo
	// A rebinding kills the taint from its position on.
	rebound := token.Pos(1 << 40)
	ast.Inspect(fd, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok && as.Pos() > put.End() && as.Pos() < rebound {
			for _, lhs := range as.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					if info.Uses[id] == obj || info.Defs[id] == obj {
						rebound = as.Pos()
					}
				}
			}
		}
		return true
	})
	after := put.End()
	if loop := enclosingLoop(fd, put); loop != nil {
		// Within the loop body, whether the Put's iteration or the
		// use's came first is undecidable function-locally; flag only
		// uses after the loop unless the loop never rebinds. A loop
		// that rebinds (the Get-use-Put cycle) is the sanctioned
		// pattern.
		if rebound <= loop.End() {
			after = loop.End()
		}
	}
	ast.Inspect(fd, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || info.Uses[id] != obj {
			return true
		}
		if id.Pos() > after && id.Pos() < rebound {
			pass.Reportf(id.Pos(), "use of %q after it was returned to the pool by Put at line %d: the pool may already have handed it to another goroutine", obj.Name(), pass.Fset.Position(put.Pos()).Line)
		}
		return true
	})
}

// enclosingLoop returns the innermost for/range statement containing n,
// or nil.
func enclosingLoop(fd *ast.FuncDecl, n ast.Node) ast.Node {
	var best ast.Node
	ast.Inspect(fd, func(c ast.Node) bool {
		switch c.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			if c.Pos() <= n.Pos() && n.End() <= c.End() {
				best = c
			}
		}
		return true
	})
	return best
}
